"""Tests of the serving subsystem: frozen models, operator store, sessions.

The load-bearing guarantees pinned here:

* ``FrozenModel`` logits are **bit-identical** to ``Trainer`` evaluation for
  DHGNN and DHGCN under every neighbour backend and both precision policies;
* a ``save -> OperatorStore.load -> FrozenModel`` round-trip reproduces the
  in-process predictions bit-for-bit, and a warm start performs **zero**
  k-NN distance computations before its first prediction;
* online insertion of a few percent new nodes goes through the incremental
  backend's scoped grow-and-repair (no construction rebuild) and matches an
  exact-rebuild reference session bit-for-bit at ``tolerance=0``;
* the operator cache's byte budget, its content-keyed neighbour memo, and
  the cross-process stability of hypergraph fingerprints.
"""

import os
import subprocess
import sys

import numpy as np
import pytest

from repro import (
    DHGCN,
    DHGCNConfig,
    DHGNN,
    HGNN,
    FrozenModel,
    InferenceSession,
    OperatorStore,
    TrainConfig,
    Trainer,
    reset_default_engine,
)
from repro.autograd.tensor import Tensor, no_grad
from repro.errors import ConfigurationError
from repro.hypergraph import Hypergraph, OperatorCache, TopologyRefreshEngine
from repro.hypergraph.knn import DISTANCE_COUNTERS
from repro.hypergraph.neighbors import ExactBackend, IncrementalBackend
from repro.precision import precision

BACKENDS = [None, "incremental", "lsh"]
PRECISIONS = ["float64", "float32"]


def _train(model, dataset, *, epochs=6, precision_name="float64", backend=None):
    trainer = Trainer(
        model,
        dataset,
        TrainConfig(
            epochs=epochs, patience=None, precision=precision_name, neighbor_backend=backend
        ),
    )
    trainer.train()
    return trainer


def _eval_logits(model, dataset, precision_name):
    model.eval()
    with precision(precision_name), no_grad():
        return model(Tensor(dataset.features)).data


# --------------------------------------------------------------------------- #
# FrozenModel: bit-identity with trainer evaluation
# --------------------------------------------------------------------------- #
class TestFrozenBitIdentity:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("precision_name", PRECISIONS)
    def test_dhgnn_golden(self, tiny_citation_dataset, backend, precision_name):
        reset_default_engine()
        dataset = tiny_citation_dataset
        model = DHGNN(dataset.n_features, dataset.n_classes, hidden_dim=8, seed=0)
        _train(model, dataset, precision_name=precision_name, backend=backend)
        reference = _eval_logits(model, dataset, precision_name)
        frozen = FrozenModel.compile(model, dataset.features)
        assert frozen.precision_name == precision_name
        logits = frozen.logits()
        assert logits.dtype == np.dtype(precision_name)
        assert np.array_equal(logits, reference)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_dhgcn(self, tiny_citation_dataset, backend):
        reset_default_engine()
        dataset = tiny_citation_dataset
        model = DHGCN(dataset.n_features, dataset.n_classes, DHGCNConfig(hidden_dim=8), seed=0)
        _train(model, dataset, backend=backend)
        reference = _eval_logits(model, dataset, "float64")
        frozen = FrozenModel.compile(model, dataset.features)
        assert np.array_equal(frozen.logits(), reference)

    @pytest.mark.parametrize("fusion", ["gate", "sum", "static_only", "dynamic_only"])
    def test_dhgcn_fusion_modes(self, tiny_citation_dataset, fusion):
        reset_default_engine()
        dataset = tiny_citation_dataset
        config = (
            DHGCNConfig(hidden_dim=8, fusion=fusion)
            if fusion in ("gate", "sum")
            else DHGCNConfig(hidden_dim=8).ablate(
                "dynamic" if fusion == "static_only" else "static"
            )
        )
        model = DHGCN(dataset.n_features, dataset.n_classes, config, seed=0)
        _train(model, dataset)
        reference = _eval_logits(model, dataset, "float64")
        frozen = FrozenModel.compile(model, dataset.features)
        assert np.array_equal(frozen.logits(), reference)

    def test_generic_module_plan(self, tiny_coauthorship_dataset):
        reset_default_engine()
        dataset = tiny_coauthorship_dataset
        model = HGNN(dataset.n_features, dataset.n_classes, hidden_dim=8, seed=0)
        _train(model, dataset)
        reference = _eval_logits(model, dataset, "float64")
        frozen = FrozenModel.compile(model, dataset.features)
        assert np.array_equal(frozen.logits(), reference)
        with pytest.raises(ConfigurationError):
            frozen.embeddings()

    def test_labels_match_trainer_predict(self, tiny_citation_dataset):
        reset_default_engine()
        dataset = tiny_citation_dataset
        model = DHGNN(dataset.n_features, dataset.n_classes, hidden_dim=8, seed=0)
        trainer = _train(model, dataset)
        frozen = FrozenModel.compile(model, dataset.features)
        assert np.array_equal(frozen.predict_labels(), trainer.predict())

    def test_compile_straight_after_setup(self, tiny_citation_dataset):
        # A model that never ran a forward materialises its operators on
        # compile instead of failing.
        reset_default_engine()
        dataset = tiny_citation_dataset
        model = DHGNN(dataset.n_features, dataset.n_classes, hidden_dim=8, seed=0)
        model.setup(dataset)
        frozen = FrozenModel.compile(model, dataset.features)
        assert frozen.logits().shape == (dataset.n_nodes, dataset.n_classes)


# --------------------------------------------------------------------------- #
# Bundle round-trips (satellite: save -> load -> bit-identical predictions)
# --------------------------------------------------------------------------- #
class TestBundleRoundTrip:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("precision_name", PRECISIONS)
    def test_dhgnn_round_trip(self, tiny_citation_dataset, tmp_path, backend, precision_name):
        reset_default_engine()
        dataset = tiny_citation_dataset
        model = DHGNN(dataset.n_features, dataset.n_classes, hidden_dim=8, seed=0)
        trainer = _train(model, dataset, precision_name=precision_name, backend=backend)
        frozen = trainer.export_frozen(str(tmp_path / "bundle"))
        reference = frozen.logits()
        reset_default_engine()
        loaded = FrozenModel.load(tmp_path / "bundle.npz")
        assert loaded.precision_name == precision_name
        assert np.array_equal(loaded.logits(), reference)
        assert np.array_equal(loaded.features, frozen.features)

    def test_dhgcn_round_trip(self, tiny_citation_dataset, tmp_path):
        reset_default_engine()
        dataset = tiny_citation_dataset
        model = DHGCN(dataset.n_features, dataset.n_classes, DHGCNConfig(hidden_dim=8), seed=0)
        trainer = _train(model, dataset, backend="incremental")
        frozen = trainer.export_frozen(str(tmp_path / "bundle"))
        reference = frozen.logits()
        reset_default_engine()
        loaded = FrozenModel.load(tmp_path / "bundle.npz")
        assert np.array_equal(loaded.logits(), reference)

    def test_warm_start_zero_distance_computations(self, tiny_citation_dataset, tmp_path):
        reset_default_engine()
        dataset = tiny_citation_dataset
        model = DHGNN(dataset.n_features, dataset.n_classes, hidden_dim=8, seed=0)
        trainer = _train(model, dataset, backend="incremental")
        trainer.export_frozen(str(tmp_path / "bundle"))
        reset_default_engine()
        loaded = FrozenModel.load(tmp_path / "bundle.npz")
        session = InferenceSession(loaded)
        DISTANCE_COUNTERS.reset()
        labels = session.predict()
        logits = session.predict(output="logits")
        embeddings = session.predict([0, 3, 5], output="embeddings")
        assert DISTANCE_COUNTERS.pairs == 0 and DISTANCE_COUNTERS.blocks == 0
        assert labels.shape == (dataset.n_nodes,)
        assert logits.shape == (dataset.n_nodes, dataset.n_classes)
        assert embeddings.shape[0] == 3

    def test_generic_plan_not_bundleable(self, tiny_coauthorship_dataset, tmp_path):
        reset_default_engine()
        dataset = tiny_coauthorship_dataset
        model = HGNN(dataset.n_features, dataset.n_classes, hidden_dim=8, seed=0)
        _train(model, dataset)
        frozen = FrozenModel.compile(model, dataset.features)
        with pytest.raises(ConfigurationError):
            frozen.save(tmp_path / "nope")


# --------------------------------------------------------------------------- #
# Online insertion and feature updates
# --------------------------------------------------------------------------- #
class TestOnlineChurn:
    def _bundle(self, dataset, tmp_path, model_kind="dhgnn"):
        reset_default_engine()
        if model_kind == "dhgnn":
            model = DHGNN(dataset.n_features, dataset.n_classes, hidden_dim=8, seed=0)
        else:
            model = DHGCN(
                dataset.n_features, dataset.n_classes, DHGCNConfig(hidden_dim=8), seed=0
            )
        trainer = _train(model, dataset, backend="incremental")
        trainer.export_frozen(str(tmp_path / "bundle"))
        return tmp_path / "bundle.npz"

    def _new_nodes(self, dataset, count, seed=5):
        rng = np.random.default_rng(seed)
        base = dataset.features[rng.choice(dataset.n_nodes, count, replace=False)]
        return base + rng.normal(scale=0.05, size=base.shape)

    @pytest.mark.parametrize("model_kind", ["dhgnn", "dhgcn"])
    @pytest.mark.parametrize("policy", ["nearest", "frozen"])
    def test_insertion_matches_exact_rebuild(
        self, tiny_citation_dataset, tmp_path, model_kind, policy
    ):
        dataset = tiny_citation_dataset
        bundle = self._bundle(dataset, tmp_path, model_kind)
        new_features = self._new_nodes(dataset, 5)  # <= 5% of 120 nodes

        incremental = InferenceSession(
            FrozenModel.load(bundle), cluster_assignment=policy
        )
        exact = InferenceSession(
            FrozenModel.load(bundle, backend=ExactBackend()), cluster_assignment=policy
        )
        ids = incremental.insert_nodes(new_features)
        assert np.array_equal(ids, np.arange(dataset.n_nodes, dataset.n_nodes + 5))
        exact.insert_nodes(new_features)
        # tolerance=0, float64: the scoped repair is bit-identical to the
        # exact full rebuild of the same refresh pipeline.
        assert np.array_equal(
            incremental.predict(output="logits"), exact.predict(output="logits")
        )
        assert incremental.n_nodes == dataset.n_nodes + 5

    def test_insertion_avoids_full_rebuild_and_saves_distance_work(
        self, tiny_citation_dataset, tmp_path
    ):
        dataset = tiny_citation_dataset
        bundle = self._bundle(dataset, tmp_path)
        new_features = self._new_nodes(dataset, 5)

        # A small positive tolerance absorbs the degree-renormalisation
        # ripple insertion causes in deeper-layer embeddings: the refresh
        # stays scoped (zero backend full rebuilds) at bounded staleness.
        session = InferenceSession(
            FrozenModel.load(bundle, backend=IncrementalBackend(tolerance=0.05)),
            cluster_assignment="frozen",
        )
        DISTANCE_COUNTERS.reset()
        session.insert_nodes(new_features)
        session.predict()
        incremental_pairs = DISTANCE_COUNTERS.pairs
        stats = session.stats()["backend"]
        assert stats["full_rebuilds"] == 0
        assert stats["rows_inserted"] == 10  # 5 nodes x 2 layer streams

        exact = InferenceSession(
            FrozenModel.load(bundle, backend=ExactBackend()), cluster_assignment="frozen"
        )
        DISTANCE_COUNTERS.reset()
        exact.insert_nodes(new_features)
        exact.predict()
        assert incremental_pairs < DISTANCE_COUNTERS.pairs
        # Bounded staleness: the tolerant session still predicts close to the
        # exact rebuild.
        assert np.allclose(
            session.predict(output="logits"), exact.predict(output="logits"), atol=0.05
        )

    def test_feature_updates_flow_through_update(self, tiny_citation_dataset, tmp_path):
        dataset = tiny_citation_dataset
        bundle = self._bundle(dataset, tmp_path)
        moved = np.array([3, 17, 40])
        values = dataset.features[moved] + 0.25

        session = InferenceSession(FrozenModel.load(bundle))
        before = session.predict(output="logits")
        session.update_features(moved, values)
        after = session.predict(output="logits")
        assert not np.array_equal(before, after)
        assert np.allclose(session.features[moved], values)

        exact = InferenceSession(FrozenModel.load(bundle, backend=ExactBackend()))
        exact.update_features(moved, values)
        assert np.array_equal(after, exact.predict(output="logits"))

    def test_micro_batched_requests_share_one_forward(
        self, tiny_citation_dataset, tmp_path
    ):
        dataset = tiny_citation_dataset
        session = InferenceSession(FrozenModel.load(self._bundle(dataset, tmp_path)))
        results = session.predict_batch(
            [
                {"nodes": [0, 1, 2], "output": "labels"},
                {"nodes": [5], "output": "logits"},
                None,
                [7, 9],
            ]
        )
        assert session.forwards == 1
        assert len(results) == 4
        assert results[0].shape == (3,)
        full_labels = session.predict()
        assert np.array_equal(results[2], full_labels)
        assert session.forwards == 1  # still served from the cached forward

    def test_sibling_sessions_are_isolated(self, tiny_citation_dataset, tmp_path):
        # Sessions clone the plan + neighbour state: one session's insertions
        # must not corrupt the frozen model or a sibling session.
        dataset = tiny_citation_dataset
        frozen = FrozenModel.load(self._bundle(dataset, tmp_path))
        first = InferenceSession(frozen)
        second = InferenceSession(frozen)
        baseline = second.predict(output="logits")
        first.insert_nodes(self._new_nodes(dataset, 4))
        first.predict()
        assert np.array_equal(second.predict(output="logits"), baseline)
        assert frozen.forward().shape == (dataset.n_nodes, dataset.n_classes)
        assert frozen.features.shape[0] == dataset.n_nodes
        # The frozen backend's state was not grown by the session's insert.
        assert frozen.engine.backend.rows_inserted == 0

    def test_dhgcn_static_reweight_is_call_order_independent(
        self, tiny_citation_dataset, tmp_path
    ):
        dataset = tiny_citation_dataset
        bundle = self._bundle(dataset, tmp_path, "dhgcn")
        moved = np.array([2, 9])
        values = dataset.features[moved] + 0.2

        eager = InferenceSession(FrozenModel.load(bundle))
        eager.predict()  # cached forward exists before the mutation
        eager.update_features(moved, values)

        lazy = InferenceSession(FrozenModel.load(bundle))
        lazy.update_features(moved, values)  # mutation before any forward

        assert np.array_equal(
            eager.predict(output="logits"), lazy.predict(output="logits")
        )

    def test_validation_errors(self, tiny_citation_dataset, tmp_path):
        dataset = tiny_citation_dataset
        session = InferenceSession(FrozenModel.load(self._bundle(dataset, tmp_path)))
        with pytest.raises(ConfigurationError):
            session.predict(output="probabilities")
        with pytest.raises(ConfigurationError):
            session.predict([dataset.n_nodes + 3])
        with pytest.raises(ConfigurationError):
            session.update_features([0], np.zeros((1, 3)))
        with pytest.raises(ConfigurationError):
            session.insert_nodes(np.zeros((1, 3)))
        with pytest.raises(ConfigurationError):
            InferenceSession(session.frozen, cluster_assignment="merge")


# --------------------------------------------------------------------------- #
# OperatorStore and the operator cache bridges
# --------------------------------------------------------------------------- #
class TestOperatorStore:
    def test_cache_snapshot_round_trip(self, tmp_path):
        hypergraph = Hypergraph(6, [[0, 1, 2], [2, 3], [3, 4, 5]], [1.0, 2.0, 0.5])
        cache = OperatorCache()
        operator = cache.propagation_operator(hypergraph)
        laplacian = cache.laplacian(hypergraph)
        path = OperatorStore.from_cache(cache).save(tmp_path / "ops")

        restored_cache = OperatorCache()
        installed = OperatorStore.load(path).install_into(restored_cache)
        assert installed == 2
        before_misses = restored_cache.misses
        hit_operator = restored_cache.propagation_operator(hypergraph)
        hit_laplacian = restored_cache.laplacian(hypergraph)
        assert restored_cache.misses == before_misses  # both were hits
        assert np.array_equal(hit_operator.toarray(), operator.toarray())
        assert np.array_equal(hit_laplacian.toarray(), laplacian.toarray())

    def test_fingerprints_stable_across_processes(self):
        # The persistence story relies on fingerprints (cache keys) being
        # identical in a different interpreter with a different hash seed.
        code = (
            "from repro.hypergraph import Hypergraph;"
            "print(repr(Hypergraph(5, [[0, 1], [1, 2, 3], [4, 0]], [1.0, 0.5, 2.0])"
            ".fingerprint()))"
        )
        env = dict(os.environ, PYTHONHASHSEED="12345", PYTHONPATH="src")
        output = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True, text=True, check=True, env=env,
            cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        ).stdout.strip()
        local = Hypergraph(5, [[0, 1], [1, 2, 3], [4, 0]], [1.0, 0.5, 2.0]).fingerprint()
        assert output == repr(local)

    def test_group_and_meta_round_trip(self, tmp_path):
        store = OperatorStore()
        store.put_group("weights", {"layer0.weight": np.arange(6.0).reshape(2, 3)})
        store.meta = {"note": "hello", "nested": {"k": [1, 2]}}
        path = store.save(tmp_path / "store")
        loaded = OperatorStore.load(path)
        assert loaded.meta == store.meta
        assert np.array_equal(
            loaded.get_group("weights")["layer0.weight"], np.arange(6.0).reshape(2, 3)
        )
        assert not loaded.has_group("missing")
        with pytest.raises(KeyError):
            loaded.get_group("missing")

    def test_backend_capture_requires_same_kind(self, tmp_path):
        backend = IncrementalBackend()
        backend.query(np.random.default_rng(0).normal(size=(20, 4)), 3)
        store = OperatorStore()
        store.capture_backend(backend)
        path = store.save(tmp_path / "b")
        loaded = OperatorStore.load(path)
        # Same kind, different tolerance: states restore fine.
        tolerant = IncrementalBackend(tolerance=0.5)
        assert loaded.restore_backend(tolerant) == 1
        with pytest.raises(ConfigurationError):
            loaded.restore_backend(ExactBackend())


# --------------------------------------------------------------------------- #
# OperatorCache: byte budget + neighbour memo (satellites)
# --------------------------------------------------------------------------- #
class TestCacheBudgetsAndMemo:
    def test_byte_budget_evicts_lru(self):
        cache = OperatorCache(max_entries=64, max_bytes=1)
        graphs = [Hypergraph(8, [[i, (i + 1) % 8, (i + 2) % 8]]) for i in range(4)]
        for graph in graphs:
            cache.propagation_operator(graph)
        stats = cache.stats()
        # A 1-byte budget keeps only the most recent entry alive.
        assert stats["entries"] == 1
        assert stats["evictions"] == 3
        assert stats["bytes"] > 0
        # The surviving entry is the most recently inserted one.
        assert cache.propagation_operator(graphs[-1]) is not None
        assert cache.stats()["hits"] == 1

    def test_byte_budget_validation(self):
        with pytest.raises(ConfigurationError):
            OperatorCache(max_bytes=0)
        with pytest.raises(ConfigurationError):
            OperatorCache(max_neighbor_entries=0)

    def test_neighbor_memo_shares_distance_pass(self):
        engine = TopologyRefreshEngine(cache=OperatorCache())
        rng = np.random.default_rng(3)
        features = rng.normal(size=(60, 7))
        first = engine.query_neighbors(features, 5)
        DISTANCE_COUNTERS.reset()
        second = engine.query_neighbors(features.copy(), 5)
        assert DISTANCE_COUNTERS.pairs == 0  # pure memo hit
        assert np.array_equal(first, second)
        stats = engine.stats()
        assert stats["neighbor_hits"] == 1 and stats["neighbor_misses"] == 1
        # Different k or content: miss.
        engine.query_neighbors(features, 4)
        engine.query_neighbors(features + 1.0, 5)
        assert engine.stats()["neighbor_misses"] == 3

    def test_sweep_reuses_neighbor_lists_across_models(self, tiny_object_dataset):
        # Two differently-seeded DHGNN runs build their first-layer topology
        # from the same raw features: the second run's first k-NN pass must be
        # a memo hit (asserted through the shared engine's counters).
        reset_default_engine()
        dataset = tiny_object_dataset
        for seed in (0, 1):
            model = DHGNN(dataset.n_features, dataset.n_classes, hidden_dim=8, seed=seed)
            _train(model, dataset, epochs=2)
        from repro.hypergraph import get_default_engine

        stats = get_default_engine().stats()
        assert stats["neighbor_hits"] >= 1


# --------------------------------------------------------------------------- #
# Trainer / TrainResult export hooks
# --------------------------------------------------------------------------- #
class TestExportHooks:
    def test_train_result_round_trip(self, tiny_citation_dataset, tmp_path):
        reset_default_engine()
        dataset = tiny_citation_dataset
        model = DHGNN(dataset.n_features, dataset.n_classes, hidden_dim=8, seed=0)
        trainer = Trainer(model, dataset, TrainConfig(epochs=3, patience=None))
        result = trainer.train()
        path = result.save(str(tmp_path / "result.json"))
        loaded = type(result).load(path)
        assert loaded.summary() == result.summary()
        assert loaded.history["train_loss"] == result.history["train_loss"]

    def test_export_frozen_without_path(self, tiny_citation_dataset):
        reset_default_engine()
        dataset = tiny_citation_dataset
        model = DHGNN(dataset.n_features, dataset.n_classes, hidden_dim=8, seed=0)
        trainer = Trainer(model, dataset, TrainConfig(epochs=3, patience=None))
        trainer.train()
        frozen = trainer.export_frozen()
        assert np.array_equal(frozen.predict_labels(), trainer.predict())

    def test_result_table_round_trip(self, tmp_path):
        from repro.training import ResultTable

        table = ResultTable(["method", "accuracy"], title="t")
        table.add_row(["a", 0.5])
        loaded = ResultTable.load(table.save(str(tmp_path / "table.json")))
        assert loaded.columns == table.columns and loaded.rows == table.rows


# --------------------------------------------------------------------------- #
# CLI surface
# --------------------------------------------------------------------------- #
class TestServingCLI:
    def test_export_then_predict(self, tmp_path, capsys):
        from repro.cli import main

        bundle = tmp_path / "bundle.npz"
        code = main(
            [
                "export", "--dataset", "cora-cocitation", "--model", "dhgnn",
                "--epochs", "3", "--nodes", "150", "--hidden-dim", "8",
                "--out", str(bundle), "--result", str(tmp_path / "result.json"),
            ]
        )
        assert code == 0 and bundle.exists()
        capsys.readouterr()
        assert main(["predict", "--bundle", str(bundle), "--nodes", "0", "7"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 2 and lines[0].startswith("0\t")
        assert main(["predict", "--bundle", str(bundle), "--output", "logits"]) == 0
        assert len(capsys.readouterr().out.strip().splitlines()) == 150
