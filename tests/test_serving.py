"""Tests of the serving subsystem: frozen models, operator store, sessions.

The load-bearing guarantees pinned here:

* ``FrozenModel`` logits are **bit-identical** to ``Trainer`` evaluation for
  DHGNN and DHGCN under every neighbour backend and both precision policies;
* a ``save -> OperatorStore.load -> FrozenModel`` round-trip reproduces the
  in-process predictions bit-for-bit, and a warm start performs **zero**
  k-NN distance computations before its first prediction;
* online insertion of a few percent new nodes goes through the incremental
  backend's scoped grow-and-repair (no construction rebuild) and matches an
  exact-rebuild reference session bit-for-bit at ``tolerance=0``;
* the full node lifecycle: deletion (lazy tombstoning through the backend's
  shrink-and-repair), compaction (physical shrink + old->new id remap) and
  cluster re-assignment all match an exact-rebuild reference session
  bit-for-bit at ``tolerance=0`` — including random interleaved
  insert/update/delete/compact sequences — and a churned session freezes
  back into a warm bundle;
* session isolation: every session owns a private refresh engine, operator
  cache and backend state; empty mutations are no-ops and duplicate update
  ids are rejected;
* the operator cache's byte budget, its content-keyed neighbour memo, and
  the cross-process stability of hypergraph fingerprints.
"""

import os
import subprocess
import sys

import numpy as np
import pytest

from repro import (
    DHGCN,
    DHGCNConfig,
    DHGNN,
    HGNN,
    FrozenModel,
    InferenceSession,
    OperatorStore,
    TrainConfig,
    Trainer,
    reset_default_engine,
)
from repro.autograd.tensor import Tensor, no_grad
from repro.errors import ConfigurationError
from repro.hypergraph import Hypergraph, OperatorCache, TopologyRefreshEngine
from repro.hypergraph.knn import DISTANCE_COUNTERS
from repro.hypergraph.neighbors import ExactBackend, IncrementalBackend
from repro.precision import precision

BACKENDS = [None, "incremental", "lsh"]
PRECISIONS = ["float64", "float32"]


def _train(model, dataset, *, epochs=6, precision_name="float64", backend=None):
    trainer = Trainer(
        model,
        dataset,
        TrainConfig(
            epochs=epochs, patience=None, precision=precision_name, neighbor_backend=backend
        ),
    )
    trainer.train()
    return trainer


def _eval_logits(model, dataset, precision_name):
    model.eval()
    with precision(precision_name), no_grad():
        return model(Tensor(dataset.features)).data


# --------------------------------------------------------------------------- #
# FrozenModel: bit-identity with trainer evaluation
# --------------------------------------------------------------------------- #
class TestFrozenBitIdentity:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("precision_name", PRECISIONS)
    def test_dhgnn_golden(self, tiny_citation_dataset, backend, precision_name):
        reset_default_engine()
        dataset = tiny_citation_dataset
        model = DHGNN(dataset.n_features, dataset.n_classes, hidden_dim=8, seed=0)
        _train(model, dataset, precision_name=precision_name, backend=backend)
        reference = _eval_logits(model, dataset, precision_name)
        frozen = FrozenModel.compile(model, dataset.features)
        assert frozen.precision_name == precision_name
        logits = frozen.logits()
        assert logits.dtype == np.dtype(precision_name)
        assert np.array_equal(logits, reference)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_dhgcn(self, tiny_citation_dataset, backend):
        reset_default_engine()
        dataset = tiny_citation_dataset
        model = DHGCN(dataset.n_features, dataset.n_classes, DHGCNConfig(hidden_dim=8), seed=0)
        _train(model, dataset, backend=backend)
        reference = _eval_logits(model, dataset, "float64")
        frozen = FrozenModel.compile(model, dataset.features)
        assert np.array_equal(frozen.logits(), reference)

    @pytest.mark.parametrize("fusion", ["gate", "sum", "static_only", "dynamic_only"])
    def test_dhgcn_fusion_modes(self, tiny_citation_dataset, fusion):
        reset_default_engine()
        dataset = tiny_citation_dataset
        config = (
            DHGCNConfig(hidden_dim=8, fusion=fusion)
            if fusion in ("gate", "sum")
            else DHGCNConfig(hidden_dim=8).ablate(
                "dynamic" if fusion == "static_only" else "static"
            )
        )
        model = DHGCN(dataset.n_features, dataset.n_classes, config, seed=0)
        _train(model, dataset)
        reference = _eval_logits(model, dataset, "float64")
        frozen = FrozenModel.compile(model, dataset.features)
        assert np.array_equal(frozen.logits(), reference)

    def test_generic_module_plan(self, tiny_coauthorship_dataset):
        reset_default_engine()
        dataset = tiny_coauthorship_dataset
        model = HGNN(dataset.n_features, dataset.n_classes, hidden_dim=8, seed=0)
        _train(model, dataset)
        reference = _eval_logits(model, dataset, "float64")
        frozen = FrozenModel.compile(model, dataset.features)
        assert np.array_equal(frozen.logits(), reference)
        with pytest.raises(ConfigurationError):
            frozen.embeddings()

    def test_labels_match_trainer_predict(self, tiny_citation_dataset):
        reset_default_engine()
        dataset = tiny_citation_dataset
        model = DHGNN(dataset.n_features, dataset.n_classes, hidden_dim=8, seed=0)
        trainer = _train(model, dataset)
        frozen = FrozenModel.compile(model, dataset.features)
        assert np.array_equal(frozen.predict_labels(), trainer.predict())

    def test_compile_straight_after_setup(self, tiny_citation_dataset):
        # A model that never ran a forward materialises its operators on
        # compile instead of failing.
        reset_default_engine()
        dataset = tiny_citation_dataset
        model = DHGNN(dataset.n_features, dataset.n_classes, hidden_dim=8, seed=0)
        model.setup(dataset)
        frozen = FrozenModel.compile(model, dataset.features)
        assert frozen.logits().shape == (dataset.n_nodes, dataset.n_classes)


# --------------------------------------------------------------------------- #
# Bundle round-trips (satellite: save -> load -> bit-identical predictions)
# --------------------------------------------------------------------------- #
class TestBundleRoundTrip:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("precision_name", PRECISIONS)
    def test_dhgnn_round_trip(self, tiny_citation_dataset, tmp_path, backend, precision_name):
        reset_default_engine()
        dataset = tiny_citation_dataset
        model = DHGNN(dataset.n_features, dataset.n_classes, hidden_dim=8, seed=0)
        trainer = _train(model, dataset, precision_name=precision_name, backend=backend)
        frozen = trainer.export_frozen(str(tmp_path / "bundle"))
        reference = frozen.logits()
        reset_default_engine()
        loaded = FrozenModel.load(tmp_path / "bundle.npz")
        assert loaded.precision_name == precision_name
        assert np.array_equal(loaded.logits(), reference)
        assert np.array_equal(loaded.features, frozen.features)

    def test_dhgcn_round_trip(self, tiny_citation_dataset, tmp_path):
        reset_default_engine()
        dataset = tiny_citation_dataset
        model = DHGCN(dataset.n_features, dataset.n_classes, DHGCNConfig(hidden_dim=8), seed=0)
        trainer = _train(model, dataset, backend="incremental")
        frozen = trainer.export_frozen(str(tmp_path / "bundle"))
        reference = frozen.logits()
        reset_default_engine()
        loaded = FrozenModel.load(tmp_path / "bundle.npz")
        assert np.array_equal(loaded.logits(), reference)

    def test_warm_start_zero_distance_computations(self, tiny_citation_dataset, tmp_path):
        reset_default_engine()
        dataset = tiny_citation_dataset
        model = DHGNN(dataset.n_features, dataset.n_classes, hidden_dim=8, seed=0)
        trainer = _train(model, dataset, backend="incremental")
        trainer.export_frozen(str(tmp_path / "bundle"))
        reset_default_engine()
        loaded = FrozenModel.load(tmp_path / "bundle.npz")
        session = InferenceSession(loaded)
        DISTANCE_COUNTERS.reset()
        labels = session.predict()
        logits = session.predict(output="logits")
        embeddings = session.predict([0, 3, 5], output="embeddings")
        assert DISTANCE_COUNTERS.pairs == 0 and DISTANCE_COUNTERS.blocks == 0
        assert labels.shape == (dataset.n_nodes,)
        assert logits.shape == (dataset.n_nodes, dataset.n_classes)
        assert embeddings.shape[0] == 3

    def test_generic_plan_not_bundleable(self, tiny_coauthorship_dataset, tmp_path):
        reset_default_engine()
        dataset = tiny_coauthorship_dataset
        model = HGNN(dataset.n_features, dataset.n_classes, hidden_dim=8, seed=0)
        _train(model, dataset)
        frozen = FrozenModel.compile(model, dataset.features)
        with pytest.raises(ConfigurationError):
            frozen.save(tmp_path / "nope")


# --------------------------------------------------------------------------- #
# Online insertion and feature updates
# --------------------------------------------------------------------------- #
class TestOnlineChurn:
    def _bundle(self, dataset, tmp_path, model_kind="dhgnn"):
        reset_default_engine()
        if model_kind == "dhgnn":
            model = DHGNN(dataset.n_features, dataset.n_classes, hidden_dim=8, seed=0)
        else:
            model = DHGCN(
                dataset.n_features, dataset.n_classes, DHGCNConfig(hidden_dim=8), seed=0
            )
        trainer = _train(model, dataset, backend="incremental")
        trainer.export_frozen(str(tmp_path / "bundle"))
        return tmp_path / "bundle.npz"

    def _new_nodes(self, dataset, count, seed=5):
        rng = np.random.default_rng(seed)
        base = dataset.features[rng.choice(dataset.n_nodes, count, replace=False)]
        return base + rng.normal(scale=0.05, size=base.shape)

    @pytest.mark.parametrize("model_kind", ["dhgnn", "dhgcn"])
    @pytest.mark.parametrize("policy", ["nearest", "frozen"])
    def test_insertion_matches_exact_rebuild(
        self, tiny_citation_dataset, tmp_path, model_kind, policy
    ):
        dataset = tiny_citation_dataset
        bundle = self._bundle(dataset, tmp_path, model_kind)
        new_features = self._new_nodes(dataset, 5)  # <= 5% of 120 nodes

        incremental = InferenceSession(
            FrozenModel.load(bundle), cluster_assignment=policy
        )
        exact = InferenceSession(
            FrozenModel.load(bundle, backend=ExactBackend()), cluster_assignment=policy
        )
        ids = incremental.insert_nodes(new_features)
        assert np.array_equal(ids, np.arange(dataset.n_nodes, dataset.n_nodes + 5))
        exact.insert_nodes(new_features)
        # tolerance=0, float64: the scoped repair is bit-identical to the
        # exact full rebuild of the same refresh pipeline.
        assert np.array_equal(
            incremental.predict(output="logits"), exact.predict(output="logits")
        )
        assert incremental.n_nodes == dataset.n_nodes + 5

    def test_insertion_avoids_full_rebuild_and_saves_distance_work(
        self, tiny_citation_dataset, tmp_path
    ):
        dataset = tiny_citation_dataset
        bundle = self._bundle(dataset, tmp_path)
        new_features = self._new_nodes(dataset, 5)

        # A small positive tolerance absorbs the degree-renormalisation
        # ripple insertion causes in deeper-layer embeddings: the refresh
        # stays scoped (zero backend full rebuilds) at bounded staleness.
        session = InferenceSession(
            FrozenModel.load(bundle, backend=IncrementalBackend(tolerance=0.05)),
            cluster_assignment="frozen",
        )
        DISTANCE_COUNTERS.reset()
        session.insert_nodes(new_features)
        session.predict()
        incremental_pairs = DISTANCE_COUNTERS.pairs
        stats = session.stats()["backend"]
        assert stats["full_rebuilds"] == 0
        assert stats["rows_inserted"] == 10  # 5 nodes x 2 layer streams

        exact = InferenceSession(
            FrozenModel.load(bundle, backend=ExactBackend()), cluster_assignment="frozen"
        )
        DISTANCE_COUNTERS.reset()
        exact.insert_nodes(new_features)
        exact.predict()
        assert incremental_pairs < DISTANCE_COUNTERS.pairs
        # Bounded staleness: the tolerant session still predicts close to the
        # exact rebuild.
        assert np.allclose(
            session.predict(output="logits"), exact.predict(output="logits"), atol=0.05
        )

    def test_feature_updates_flow_through_update(self, tiny_citation_dataset, tmp_path):
        dataset = tiny_citation_dataset
        bundle = self._bundle(dataset, tmp_path)
        moved = np.array([3, 17, 40])
        values = dataset.features[moved] + 0.25

        session = InferenceSession(FrozenModel.load(bundle))
        before = session.predict(output="logits")
        session.update_features(moved, values)
        after = session.predict(output="logits")
        assert not np.array_equal(before, after)
        assert np.allclose(session.features[moved], values)

        exact = InferenceSession(FrozenModel.load(bundle, backend=ExactBackend()))
        exact.update_features(moved, values)
        assert np.array_equal(after, exact.predict(output="logits"))

    def test_micro_batched_requests_share_one_forward(
        self, tiny_citation_dataset, tmp_path
    ):
        dataset = tiny_citation_dataset
        session = InferenceSession(FrozenModel.load(self._bundle(dataset, tmp_path)))
        results = session.predict_batch(
            [
                {"nodes": [0, 1, 2], "output": "labels"},
                {"nodes": [5], "output": "logits"},
                None,
                [7, 9],
            ]
        )
        assert session.forwards == 1
        assert len(results) == 4
        assert results[0].shape == (3,)
        full_labels = session.predict()
        assert np.array_equal(results[2], full_labels)
        assert session.forwards == 1  # still served from the cached forward

    def test_sibling_sessions_are_isolated(self, tiny_citation_dataset, tmp_path):
        # Sessions clone the plan + neighbour state: one session's insertions
        # must not corrupt the frozen model or a sibling session.
        dataset = tiny_citation_dataset
        frozen = FrozenModel.load(self._bundle(dataset, tmp_path))
        first = InferenceSession(frozen)
        second = InferenceSession(frozen)
        baseline = second.predict(output="logits")
        first.insert_nodes(self._new_nodes(dataset, 4))
        first.predict()
        assert np.array_equal(second.predict(output="logits"), baseline)
        assert frozen.forward().shape == (dataset.n_nodes, dataset.n_classes)
        assert frozen.features.shape[0] == dataset.n_nodes
        # The frozen backend's state was not grown by the session's insert.
        assert frozen.engine.backend.rows_inserted == 0

    def test_dhgcn_static_reweight_is_call_order_independent(
        self, tiny_citation_dataset, tmp_path
    ):
        dataset = tiny_citation_dataset
        bundle = self._bundle(dataset, tmp_path, "dhgcn")
        moved = np.array([2, 9])
        values = dataset.features[moved] + 0.2

        eager = InferenceSession(FrozenModel.load(bundle))
        eager.predict()  # cached forward exists before the mutation
        eager.update_features(moved, values)

        lazy = InferenceSession(FrozenModel.load(bundle))
        lazy.update_features(moved, values)  # mutation before any forward

        assert np.array_equal(
            eager.predict(output="logits"), lazy.predict(output="logits")
        )

    def test_validation_errors(self, tiny_citation_dataset, tmp_path):
        dataset = tiny_citation_dataset
        session = InferenceSession(FrozenModel.load(self._bundle(dataset, tmp_path)))
        with pytest.raises(ConfigurationError):
            session.predict(output="probabilities")
        with pytest.raises(ConfigurationError):
            session.predict([dataset.n_nodes + 3])
        with pytest.raises(ConfigurationError):
            session.update_features([0], np.zeros((1, 3)))
        with pytest.raises(ConfigurationError):
            session.insert_nodes(np.zeros((1, 3)))
        with pytest.raises(ConfigurationError):
            InferenceSession(session.frozen, cluster_assignment="merge")


# --------------------------------------------------------------------------- #
# Node lifecycle: deletion, compaction, cluster re-assignment
# --------------------------------------------------------------------------- #
class TestNodeLifecycle:
    def _bundle(self, dataset, tmp_path, model_kind="dhgnn", precision_name="float64"):
        reset_default_engine()
        if model_kind == "dhgnn":
            model = DHGNN(dataset.n_features, dataset.n_classes, hidden_dim=8, seed=0)
        else:
            model = DHGCN(
                dataset.n_features, dataset.n_classes, DHGCNConfig(hidden_dim=8), seed=0
            )
        trainer = _train(model, dataset, backend="incremental", precision_name=precision_name)
        trainer.export_frozen(str(tmp_path / "bundle"))
        return tmp_path / "bundle.npz"

    @pytest.mark.parametrize("model_kind", ["dhgnn", "dhgcn"])
    @pytest.mark.parametrize("precision_name", PRECISIONS)
    def test_deletion_matches_exact_rebuild(
        self, tiny_citation_dataset, tmp_path, model_kind, precision_name
    ):
        dataset = tiny_citation_dataset
        bundle = self._bundle(dataset, tmp_path, model_kind, precision_name)
        doomed = [3, 17, 40, 41, 99]

        incremental = InferenceSession(FrozenModel.load(bundle))
        exact = InferenceSession(FrozenModel.load(bundle, backend=ExactBackend()))
        incremental.delete_nodes(doomed)
        exact.delete_nodes(doomed)
        # tolerance=0: the shrink-and-repair is bit-identical to the exact
        # full rebuild of the surviving node set.
        logits = incremental.predict(output="logits")
        assert np.array_equal(logits, exact.predict(output="logits"))
        assert logits.shape[0] == dataset.n_nodes - 5
        assert incremental.n_alive == dataset.n_nodes - 5
        assert incremental.n_nodes == dataset.n_nodes  # lazy: matrix unshrunk
        backend_stats = incremental.stats()["backend"]
        if precision_name == "float64":
            # The layer-0 stream was shrunk in place (deeper streams may
            # legitimately churn past the threshold at tolerance=0).
            assert backend_stats["rows_deleted"] > 0
        else:
            # float32 states are dropped (recentring reorders near-ties
            # wholesale), so bit-identity comes from a clean full rebuild.
            assert backend_stats["rows_deleted"] == 0
            assert backend_stats["full_rebuilds"] > 0

    @pytest.mark.parametrize("model_kind", ["dhgnn", "dhgcn"])
    def test_compact_matches_exact_rebuild(
        self, tiny_citation_dataset, tmp_path, model_kind
    ):
        dataset = tiny_citation_dataset
        bundle = self._bundle(dataset, tmp_path, model_kind)
        doomed = [0, 25, 60, 119]

        incremental = InferenceSession(FrozenModel.load(bundle))
        exact = InferenceSession(FrozenModel.load(bundle, backend=ExactBackend()))
        incremental.delete_nodes(doomed)
        exact.delete_nodes(doomed)
        remap = incremental.compact()
        assert np.array_equal(remap, exact.compact())
        # The remap contract: deleted ids map to -1, survivors to their rank.
        assert np.array_equal(remap[doomed], [-1] * 4)
        survivors = np.setdiff1d(np.arange(dataset.n_nodes), doomed)
        assert np.array_equal(remap[survivors], np.arange(survivors.size))
        assert incremental.n_nodes == incremental.n_alive == survivors.size
        assert incremental.features.shape[0] == survivors.size
        assert np.array_equal(
            incremental.predict(output="logits"), exact.predict(output="logits")
        )
        # Compacting a session with no tombstones is an identity no-op.
        refreshes = incremental.refreshes
        identity = incremental.compact()
        assert np.array_equal(identity, np.arange(survivors.size))
        assert incremental.refreshes == refreshes

    def test_tombstoned_close_to_compacted(self, tiny_citation_dataset, tmp_path):
        # The tombstoned (full-size, isolated rows) and the compacted
        # (shrunken) topologies are the same hypergraph up to re-indexing;
        # for the unweighted DHGNN pipeline the surviving logits agree to
        # rounding (dense BLAS blocks by matrix size, so bitwise equality
        # across the two shapes is not guaranteed).
        dataset = tiny_citation_dataset
        bundle = self._bundle(dataset, tmp_path)
        doomed = [5, 50, 95]
        tombstoned = InferenceSession(FrozenModel.load(bundle))
        compacted = InferenceSession(FrozenModel.load(bundle))
        tombstoned.delete_nodes(doomed)
        compacted.delete_nodes(doomed)
        compacted.compact()
        assert np.allclose(
            tombstoned.predict(output="logits"),
            compacted.predict(output="logits"),
            atol=1e-10,
        )

    def test_deleted_nodes_are_rejected(self, tiny_citation_dataset, tmp_path):
        dataset = tiny_citation_dataset
        session = InferenceSession(FrozenModel.load(self._bundle(dataset, tmp_path)))
        session.delete_nodes([4, 9])
        with pytest.raises(ConfigurationError, match="deleted"):
            session.predict([4])
        with pytest.raises(ConfigurationError, match="deleted"):
            session.predict(9, output="logits")
        with pytest.raises(ConfigurationError, match="deleted"):
            session.update_features([9], dataset.features[[9]])
        with pytest.raises(ConfigurationError, match="already been deleted"):
            session.delete_nodes([4])
        with pytest.raises(ConfigurationError, match="duplicate"):
            session.delete_nodes([7, 7])
        with pytest.raises(ConfigurationError):
            session.delete_nodes([dataset.n_nodes])
        with pytest.raises(ConfigurationError, match="fewer than 2"):
            session.delete_nodes(
                np.setdiff1d(np.arange(dataset.n_nodes), [4, 9, 0]).tolist()
            )
        # Alive nodes keep working, and whole-set queries skip the dead rows.
        assert session.predict().shape == (dataset.n_nodes - 2,)
        assert np.array_equal(
            session.alive_ids, np.setdiff1d(np.arange(dataset.n_nodes), [4, 9])
        )

    def test_deletion_saves_distance_work_and_compact_frees_bytes(
        self, tiny_citation_dataset, tmp_path
    ):
        dataset = tiny_citation_dataset
        bundle = self._bundle(dataset, tmp_path)
        doomed = [2, 30, 31, 77, 111]

        session = InferenceSession(
            FrozenModel.load(bundle, backend=IncrementalBackend(tolerance=0.05)),
            cluster_assignment="frozen",
        )
        session.predict()
        DISTANCE_COUNTERS.reset()
        session.delete_nodes(doomed)
        session.predict()
        incremental_pairs = DISTANCE_COUNTERS.pairs
        assert session.stats()["backend"]["full_rebuilds"] == 0

        feature_bytes = session.features.nbytes
        operator_bytes = session.stats()["engine"]["bytes"]
        session.compact()
        assert session.features.nbytes < feature_bytes
        assert session.stats()["engine"]["bytes"] < operator_bytes

        exact = InferenceSession(
            FrozenModel.load(bundle, backend=ExactBackend()), cluster_assignment="frozen"
        )
        exact.predict()
        DISTANCE_COUNTERS.reset()
        exact.delete_nodes(doomed)
        exact.predict()
        assert incremental_pairs < DISTANCE_COUNTERS.pairs

    def test_repeated_deletions_do_not_accumulate_cache_entries(
        self, tiny_citation_dataset, tmp_path
    ):
        # Every tombstone generation supersedes the previous one's masked
        # operators (including the unweighted-DHGCN static channel), so a
        # long-running delete->predict server keeps a bounded cache.
        dataset = tiny_citation_dataset
        reset_default_engine()
        model = DHGCN(
            dataset.n_features,
            dataset.n_classes,
            DHGCNConfig(hidden_dim=8, use_edge_weighting=False),
            seed=0,
        )
        trainer = _train(model, dataset, backend="incremental")
        trainer.export_frozen(str(tmp_path / "bundle"))
        session = InferenceSession(FrozenModel.load(tmp_path / "bundle.npz"))
        session.delete_nodes([1, 2])
        session.predict()
        entries = session.stats()["engine"]["entries"]
        bytes_first = session.stats()["engine"]["bytes"]
        for doomed in ([5, 6], [9], [12, 13]):
            session.delete_nodes(doomed)
            session.predict()
            assert session.stats()["engine"]["entries"] == entries
            assert session.stats()["engine"]["bytes"] <= bytes_first
        session.compact()
        assert session.stats()["engine"]["bytes"] < bytes_first

    @pytest.mark.parametrize("model_kind", ["dhgnn", "dhgcn"])
    def test_reassign_clusters_is_backend_independent(
        self, tiny_citation_dataset, tmp_path, model_kind
    ):
        dataset = tiny_citation_dataset
        bundle = self._bundle(dataset, tmp_path, model_kind)
        incremental = InferenceSession(FrozenModel.load(bundle))
        exact = InferenceSession(FrozenModel.load(bundle, backend=ExactBackend()))
        moves = incremental.reassign_clusters()
        assert moves == exact.reassign_clusters()
        assert incremental.reassignments == 1
        assert np.array_equal(
            incremental.predict(output="logits"), exact.predict(output="logits")
        )

    def test_reassign_policy_fires_every_n_refreshes(
        self, tiny_citation_dataset, tmp_path
    ):
        dataset = tiny_citation_dataset
        session = InferenceSession(FrozenModel.load(self._bundle(dataset, tmp_path)))
        assert session.reassign_clusters(every_n=2) is None
        for step in range(4):
            session.update_features([step], dataset.features[[step]] + 0.1)
            session.predict()
        assert session.refreshes == 4
        assert session.reassignments == 2  # refreshes 2 and 4
        session.reassign_clusters(every_n=0)  # clear the policy
        session.update_features([10], dataset.features[[10]] + 0.1)
        session.predict()
        session.update_features([11], dataset.features[[11]] + 0.1)
        session.predict()
        assert session.reassignments == 2
        with pytest.raises(ConfigurationError):
            session.reassign_clusters(every_n=-1)

    def test_reassignment_bounds_membership_staleness(
        self, tiny_citation_dataset, tmp_path
    ):
        # After a large coherent drift the re-assigned memberships follow the
        # embedding: re-running the assignment immediately afterwards moves
        # (almost) nothing.
        dataset = tiny_citation_dataset
        session = InferenceSession(FrozenModel.load(self._bundle(dataset, tmp_path)))
        rng = np.random.default_rng(3)
        moved = rng.choice(dataset.n_nodes, 30, replace=False)
        session.update_features(
            moved, dataset.features[(moved + 60) % dataset.n_nodes]
        )
        first = session.reassign_clusters()
        second = session.reassign_clusters()
        assert second <= first

    def test_lifecycle_round_trip_through_bundle(self, tiny_citation_dataset, tmp_path):
        # The deleted-state round-trip: churn, compact, freeze, save, load —
        # the restored session answers bit-identically with zero distance
        # work.
        dataset = tiny_citation_dataset
        bundle = self._bundle(dataset, tmp_path)
        session = InferenceSession(FrozenModel.load(bundle))
        rng = np.random.default_rng(4)
        session.insert_nodes(
            dataset.features[rng.choice(dataset.n_nodes, 4, replace=False)] + 0.01
        )
        session.delete_nodes([1, 2, 3])
        with pytest.raises(ConfigurationError, match="compact"):
            session.to_frozen()
        session.compact()
        reference = session.predict(output="logits")

        snapshot = session.to_frozen()
        # The snapshot owns its cache and backend: further session churn
        # must not age or grow them.
        assert snapshot.engine.cache is not session.engine.cache
        assert snapshot.engine.backend is not session.backend
        checkpoint = snapshot.save(tmp_path / "checkpoint")
        reset_default_engine()
        restored = InferenceSession(FrozenModel.load(checkpoint))
        DISTANCE_COUNTERS.reset()
        assert np.array_equal(restored.predict(output="logits"), reference)
        assert DISTANCE_COUNTERS.pairs == 0
        # The restored backend state is warm: the layer-0 stream repairs
        # incrementally instead of rebuilding.
        restored.update_features([0], restored.features[[0]] + 0.05)
        restored.predict()
        assert restored.stats()["backend"]["partial_refreshes"] >= 1

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_interleaved_lifecycle_property(self, tiny_citation_dataset, tmp_path, seed):
        # Random insert/update/delete/compact sequences: the incremental
        # session at tolerance=0 stays bit-identical to the exact full
        # rebuild of the same surviving node set, and the per-refresh
        # bookkeeping invariants hold after every predict.
        dataset = tiny_citation_dataset
        bundle = self._bundle(dataset, tmp_path)
        incremental = InferenceSession(FrozenModel.load(bundle))
        exact = InferenceSession(FrozenModel.load(bundle, backend=ExactBackend()))
        rng = np.random.default_rng(seed)
        for step in range(8):
            operation = rng.choice(["insert", "update", "delete", "compact"])
            if operation == "insert":
                count = int(rng.integers(1, 4))
                base = dataset.features[rng.choice(dataset.n_nodes, count, replace=False)]
                new = base + rng.normal(scale=0.05, size=base.shape)
                assert np.array_equal(
                    incremental.insert_nodes(new), exact.insert_nodes(new)
                )
            elif operation == "update":
                alive = incremental.alive_ids
                ids = rng.choice(alive, min(3, alive.size), replace=False)
                values = incremental.features[ids] + rng.normal(
                    scale=0.1, size=(ids.size, dataset.n_features)
                )
                incremental.update_features(ids, values)
                exact.update_features(ids, values)
            elif operation == "delete":
                alive = incremental.alive_ids
                ids = rng.choice(alive, int(rng.integers(1, 4)), replace=False)
                incremental.delete_nodes(ids)
                exact.delete_nodes(ids)
            else:
                assert np.array_equal(incremental.compact(), exact.compact())
            refreshes = incremental.refreshes
            assert np.array_equal(
                incremental.predict(output="logits"), exact.predict(output="logits")
            )
            # Refresh bookkeeping invariants: the mover mask and insertion
            # counter reset, the backend states track the alive set.
            assert incremental.refreshes >= refreshes
            assert not incremental._moved.any()
            assert incremental._inserted == 0
            assert incremental._state_ids.size == incremental.n_alive
            backend_stats = incremental.stats()["backend"]
            assert backend_stats["states"] >= 1
        assert incremental.n_alive == exact.n_alive


# --------------------------------------------------------------------------- #
# Session-isolation and validation bugfix regressions
# --------------------------------------------------------------------------- #
class TestSessionBugfixes:
    def _bundle(self, dataset, tmp_path):
        reset_default_engine()
        model = DHGNN(dataset.n_features, dataset.n_classes, hidden_dim=8, seed=0)
        trainer = _train(model, dataset, backend="incremental")
        trainer.export_frozen(str(tmp_path / "bundle"))
        return tmp_path / "bundle.npz"

    def test_sessions_get_private_engine_and_cache(
        self, tiny_citation_dataset, tmp_path
    ):
        # Two sessions over one FrozenModel: one churns (insert + delete +
        # compact), the other's predictions stay bit-identical and its cache
        # stats untouched.
        dataset = tiny_citation_dataset
        frozen = FrozenModel.load(self._bundle(dataset, tmp_path))
        churning = InferenceSession(frozen)
        steady = InferenceSession(frozen)
        assert churning.engine is not frozen.engine
        assert churning.engine.cache is not frozen.engine.cache
        assert churning.engine.cache is not steady.engine.cache

        baseline = steady.predict(output="logits")
        steady_stats = steady.stats()["engine"].copy()
        rng = np.random.default_rng(7)
        churning.insert_nodes(
            dataset.features[rng.choice(dataset.n_nodes, 4, replace=False)] + 0.02
        )
        churning.predict()
        churning.delete_nodes([0, 1])
        churning.predict()
        churning.compact()
        churning.predict()
        assert np.array_equal(steady.predict(output="logits"), baseline)
        assert steady.stats()["engine"] == steady_stats
        assert frozen.features.shape[0] == dataset.n_nodes

    def test_private_cache_is_seeded_from_frozen(self, tiny_citation_dataset):
        # A compiled (in-process) frozen model carries cached operators; the
        # session's private cache starts warm with those entries.
        reset_default_engine()
        dataset = tiny_citation_dataset
        model = DHGNN(dataset.n_features, dataset.n_classes, hidden_dim=8, seed=0)
        _train(model, dataset, backend="incremental")
        frozen = FrozenModel.compile(model, dataset.features)
        source_entries = len(frozen.engine.cache.export_entries())
        assert source_entries > 0
        session = InferenceSession(frozen)
        assert session.stats()["engine"]["entries"] == source_entries

    def test_empty_mutations_are_noops(self, tiny_citation_dataset, tmp_path):
        dataset = tiny_citation_dataset
        session = InferenceSession(FrozenModel.load(self._bundle(dataset, tmp_path)))
        session.predict()
        refreshes, forwards = session.refreshes, session.forwards
        DISTANCE_COUNTERS.reset()
        session.update_features([], np.zeros((0, dataset.n_features)))
        session.update_features([], [])  # the natural empty-list spelling too
        ids = session.insert_nodes(np.zeros((0, dataset.n_features)))
        assert session.insert_nodes([]).size == 0
        session.delete_nodes([])
        session.predict()
        assert ids.size == 0
        # Empty ids with non-empty values is still a (loud) shape error.
        with pytest.raises(ConfigurationError, match="shape"):
            session.update_features([], dataset.features[:2])
        assert session.refreshes == refreshes
        assert session.forwards == forwards
        assert DISTANCE_COUNTERS.pairs == 0 and DISTANCE_COUNTERS.blocks == 0

    def test_duplicate_update_ids_rejected(self, tiny_citation_dataset, tmp_path):
        dataset = tiny_citation_dataset
        session = InferenceSession(FrozenModel.load(self._bundle(dataset, tmp_path)))
        with pytest.raises(ConfigurationError, match=r"duplicate node ids \[5\]"):
            session.update_features([5, 5, 9], dataset.features[[5, 5, 9]])
        with pytest.raises(ConfigurationError, match=r"\[2, 7\]"):
            session.update_features([2, 7, 2, 7], dataset.features[[2, 7, 2, 7]])
        # The failed calls left no stale marks behind.
        session.predict()
        refreshes = session.refreshes
        session.predict()
        assert session.refreshes == refreshes

    def test_non_integer_node_ids_rejected(self, tiny_citation_dataset, tmp_path):
        # float 3.7 used to be silently truncated to node 3 by the astype
        # coercion; now every non-integer id dtype is a loud error that names
        # the offending values.
        dataset = tiny_citation_dataset
        session = InferenceSession(FrozenModel.load(self._bundle(dataset, tmp_path)))
        with pytest.raises(ConfigurationError, match=r"3\.7"):
            session.predict(3.7)
        with pytest.raises(ConfigurationError, match=r"1\.5"):
            session.predict([0, 1.5, 2])
        # Integral-valued floats are still the wrong dtype: reject them too
        # rather than guessing the caller's intent.
        with pytest.raises(ConfigurationError, match="must be integers"):
            session.predict(np.array([1.0, 2.0]))
        with pytest.raises(ConfigurationError, match="must be integers"):
            session.update_features(np.array([2.5]), dataset.features[:1])
        with pytest.raises(ConfigurationError, match="must be integers"):
            session.delete_nodes([0.3])
        # Empty selections (float64 by numpy default) and plain ints pass.
        assert session.predict([]).size == 0
        assert session.predict(np.array([], dtype=np.float64)).size == 0
        session.predict([0, 1])
        session.predict(np.array([3], dtype=np.uint16))

    def test_predict_batch_isolates_bad_requests(self, tiny_citation_dataset, tmp_path):
        dataset = tiny_citation_dataset
        session = InferenceSession(FrozenModel.load(self._bundle(dataset, tmp_path)))
        session.delete_nodes([11])
        requests = [
            {"nodes": [0, 1], "output": "logits"},
            {"nodes": 3.7},                      # non-integer id
            [2, 5],                              # bare sequence form
            {"nodes": [11]},                     # deleted node
            {"nodes": [4], "output": "entropy"},  # unknown output
            {"nodes": None, "output": "labels"},  # whole alive set
        ]
        results = session.predict_batch(requests, on_error="return")
        assert np.array_equal(results[0], session.predict([0, 1], output="logits"))
        assert isinstance(results[1], ConfigurationError) and "3.7" in str(results[1])
        assert np.array_equal(results[2], session.predict([2, 5]))
        assert isinstance(results[3], ConfigurationError) and "deleted" in str(results[3])
        assert isinstance(results[4], ConfigurationError) and "output" in str(results[4])
        assert np.array_equal(results[5], session.predict())

    def test_predict_batch_validates_before_computing(
        self, tiny_citation_dataset, tmp_path
    ):
        # With on_error="raise" a bad entry anywhere in the batch fails the
        # call before any forward happens — even when fresh work was pending.
        dataset = tiny_citation_dataset
        session = InferenceSession(FrozenModel.load(self._bundle(dataset, tmp_path)))
        session.insert_nodes(dataset.features[:2] + 0.01)  # make a refresh pending
        forwards = session.forwards
        with pytest.raises(ConfigurationError, match="must be integers"):
            session.predict_batch([{"nodes": [0]}, {"nodes": [1.5]}])
        assert session.forwards == forwards  # nothing was computed
        with pytest.raises(ConfigurationError, match="on_error"):
            session.predict_batch([[0]], on_error="ignore")
        # An all-bad batch under on_error="return" computes nothing either.
        results = session.predict_batch([{"nodes": 0.5}], on_error="return")
        assert session.forwards == forwards
        assert isinstance(results[0], ConfigurationError)


# --------------------------------------------------------------------------- #
# OperatorStore and the operator cache bridges
# --------------------------------------------------------------------------- #
class TestOperatorStore:
    def test_cache_snapshot_round_trip(self, tmp_path):
        hypergraph = Hypergraph(6, [[0, 1, 2], [2, 3], [3, 4, 5]], [1.0, 2.0, 0.5])
        cache = OperatorCache()
        operator = cache.propagation_operator(hypergraph)
        laplacian = cache.laplacian(hypergraph)
        path = OperatorStore.from_cache(cache).save(tmp_path / "ops")

        restored_cache = OperatorCache()
        installed = OperatorStore.load(path).install_into(restored_cache)
        assert installed == 2
        before_misses = restored_cache.misses
        hit_operator = restored_cache.propagation_operator(hypergraph)
        hit_laplacian = restored_cache.laplacian(hypergraph)
        assert restored_cache.misses == before_misses  # both were hits
        assert np.array_equal(hit_operator.toarray(), operator.toarray())
        assert np.array_equal(hit_laplacian.toarray(), laplacian.toarray())

    def test_fingerprints_stable_across_processes(self):
        # The persistence story relies on fingerprints (cache keys) being
        # identical in a different interpreter with a different hash seed.
        code = (
            "from repro.hypergraph import Hypergraph;"
            "print(repr(Hypergraph(5, [[0, 1], [1, 2, 3], [4, 0]], [1.0, 0.5, 2.0])"
            ".fingerprint()))"
        )
        env = dict(os.environ, PYTHONHASHSEED="12345", PYTHONPATH="src")
        output = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True, text=True, check=True, env=env,
            cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        ).stdout.strip()
        local = Hypergraph(5, [[0, 1], [1, 2, 3], [4, 0]], [1.0, 0.5, 2.0]).fingerprint()
        assert output == repr(local)

    def test_group_and_meta_round_trip(self, tmp_path):
        store = OperatorStore()
        store.put_group("weights", {"layer0.weight": np.arange(6.0).reshape(2, 3)})
        store.meta = {"note": "hello", "nested": {"k": [1, 2]}}
        path = store.save(tmp_path / "store")
        loaded = OperatorStore.load(path)
        assert loaded.meta == store.meta
        assert np.array_equal(
            loaded.get_group("weights")["layer0.weight"], np.arange(6.0).reshape(2, 3)
        )
        assert not loaded.has_group("missing")
        with pytest.raises(KeyError):
            loaded.get_group("missing")

    def test_backend_capture_requires_same_kind(self, tmp_path):
        backend = IncrementalBackend()
        backend.query(np.random.default_rng(0).normal(size=(20, 4)), 3)
        store = OperatorStore()
        store.capture_backend(backend)
        path = store.save(tmp_path / "b")
        loaded = OperatorStore.load(path)
        # Same kind, different tolerance: states restore fine.
        tolerant = IncrementalBackend(tolerance=0.5)
        assert loaded.restore_backend(tolerant) == 1
        with pytest.raises(ConfigurationError):
            loaded.restore_backend(ExactBackend())

    def test_save_is_atomic(self, tmp_path, monkeypatch):
        # A crash mid-write must never leave a torn archive at the target
        # path: the previous complete bundle stays readable and no temp
        # files are left behind.
        store = OperatorStore()
        store.put_group("weights", {"w": np.arange(4.0)})
        path = store.save(tmp_path / "store")
        assert [p.name for p in tmp_path.iterdir()] == ["store.npz"]

        def torn_write(handle, **arrays):
            handle.write(b"partial garbage")
            raise OSError("disk full")

        monkeypatch.setattr(np, "savez_compressed", torn_write)
        store.put_group("weights", {"w": np.arange(8.0)})
        with pytest.raises(OSError, match="disk full"):
            store.save(path)
        monkeypatch.undo()
        # The original archive is intact and still loads; no .tmp litter.
        assert [p.name for p in tmp_path.iterdir()] == ["store.npz"]
        loaded = OperatorStore.load(path)
        assert np.array_equal(loaded.get_group("weights")["w"], np.arange(4.0))


# --------------------------------------------------------------------------- #
# OperatorCache: byte budget + neighbour memo (satellites)
# --------------------------------------------------------------------------- #
class TestCacheBudgetsAndMemo:
    def test_byte_budget_evicts_lru(self):
        cache = OperatorCache(max_entries=64, max_bytes=1)
        graphs = [Hypergraph(8, [[i, (i + 1) % 8, (i + 2) % 8]]) for i in range(4)]
        for graph in graphs:
            cache.propagation_operator(graph)
        stats = cache.stats()
        # A 1-byte budget keeps only the most recent entry alive.
        assert stats["entries"] == 1
        assert stats["evictions"] == 3
        assert stats["bytes"] > 0
        # The surviving entry is the most recently inserted one.
        assert cache.propagation_operator(graphs[-1]) is not None
        assert cache.stats()["hits"] == 1

    def test_byte_budget_validation(self):
        with pytest.raises(ConfigurationError):
            OperatorCache(max_bytes=0)
        with pytest.raises(ConfigurationError):
            OperatorCache(max_neighbor_entries=0)

    def test_neighbor_memo_shares_distance_pass(self):
        engine = TopologyRefreshEngine(cache=OperatorCache())
        rng = np.random.default_rng(3)
        features = rng.normal(size=(60, 7))
        first = engine.query_neighbors(features, 5)
        DISTANCE_COUNTERS.reset()
        second = engine.query_neighbors(features.copy(), 5)
        assert DISTANCE_COUNTERS.pairs == 0  # pure memo hit
        assert np.array_equal(first, second)
        stats = engine.stats()
        assert stats["neighbor_hits"] == 1 and stats["neighbor_misses"] == 1
        # Different k or content: miss.
        engine.query_neighbors(features, 4)
        engine.query_neighbors(features + 1.0, 5)
        assert engine.stats()["neighbor_misses"] == 3

    def test_sweep_reuses_neighbor_lists_across_models(self, tiny_object_dataset):
        # Two differently-seeded DHGNN runs build their first-layer topology
        # from the same raw features: the second run's first k-NN pass must be
        # a memo hit (asserted through the shared engine's counters).
        reset_default_engine()
        dataset = tiny_object_dataset
        for seed in (0, 1):
            model = DHGNN(dataset.n_features, dataset.n_classes, hidden_dim=8, seed=seed)
            _train(model, dataset, epochs=2)
        from repro.hypergraph import get_default_engine

        stats = get_default_engine().stats()
        assert stats["neighbor_hits"] >= 1


# --------------------------------------------------------------------------- #
# Trainer / TrainResult export hooks
# --------------------------------------------------------------------------- #
class TestExportHooks:
    def test_train_result_round_trip(self, tiny_citation_dataset, tmp_path):
        reset_default_engine()
        dataset = tiny_citation_dataset
        model = DHGNN(dataset.n_features, dataset.n_classes, hidden_dim=8, seed=0)
        trainer = Trainer(model, dataset, TrainConfig(epochs=3, patience=None))
        result = trainer.train()
        path = result.save(str(tmp_path / "result.json"))
        loaded = type(result).load(path)
        assert loaded.summary() == result.summary()
        assert loaded.history["train_loss"] == result.history["train_loss"]

    def test_export_frozen_without_path(self, tiny_citation_dataset):
        reset_default_engine()
        dataset = tiny_citation_dataset
        model = DHGNN(dataset.n_features, dataset.n_classes, hidden_dim=8, seed=0)
        trainer = Trainer(model, dataset, TrainConfig(epochs=3, patience=None))
        trainer.train()
        frozen = trainer.export_frozen()
        assert np.array_equal(frozen.predict_labels(), trainer.predict())

    def test_result_table_round_trip(self, tmp_path):
        from repro.training import ResultTable

        table = ResultTable(["method", "accuracy"], title="t")
        table.add_row(["a", 0.5])
        loaded = ResultTable.load(table.save(str(tmp_path / "table.json")))
        assert loaded.columns == table.columns and loaded.rows == table.rows


# --------------------------------------------------------------------------- #
# CLI surface
# --------------------------------------------------------------------------- #
class TestServingCLI:
    def test_export_then_predict(self, tmp_path, capsys):
        from repro.cli import main

        bundle = tmp_path / "bundle.npz"
        code = main(
            [
                "export", "--dataset", "cora-cocitation", "--model", "dhgnn",
                "--epochs", "3", "--nodes", "150", "--hidden-dim", "8",
                "--out", str(bundle), "--result", str(tmp_path / "result.json"),
            ]
        )
        assert code == 0 and bundle.exists()
        capsys.readouterr()
        assert main(["predict", "--bundle", str(bundle), "--nodes", "0", "7"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 2 and lines[0].startswith("0\t")
        assert main(["predict", "--bundle", str(bundle), "--output", "logits"]) == 0
        assert len(capsys.readouterr().out.strip().splitlines()) == 150

    def test_predict_delete_and_compact(self, tmp_path, capsys):
        from repro.cli import main

        bundle = tmp_path / "bundle.npz"
        main(
            [
                "export", "--dataset", "cora-cocitation", "--model", "dhgnn",
                "--epochs", "3", "--nodes", "150", "--hidden-dim", "8",
                "--out", str(bundle),
            ]
        )
        capsys.readouterr()
        assert main(["predict", "--bundle", str(bundle), "--delete", "0", "5"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 148
        assert lines[0].startswith("1\t")  # deleted ids skipped, not renumbered
        assert (
            main(
                ["predict", "--bundle", str(bundle), "--delete", "0", "5",
                 "--compact", "--reassign-clusters"]
            )
            == 0
        )
        captured = capsys.readouterr()
        lines = captured.out.strip().splitlines()
        assert len(lines) == 148
        assert lines[0].startswith("0\t")  # compaction renumbered the ids
        assert "compacted to 148 nodes" in captured.err
        assert "reassigned clusters" in captured.err
        # --nodes keeps meaning the PRE-compact ids the user typed: node 10
        # answers identically whether or not the state was compacted.
        assert main(["predict", "--bundle", str(bundle), "--delete", "0", "5",
                     "--nodes", "10"]) == 0
        tombstoned_line = capsys.readouterr().out.strip()
        assert main(["predict", "--bundle", str(bundle), "--delete", "0", "5",
                     "--compact", "--nodes", "10"]) == 0
        assert capsys.readouterr().out.strip() == tombstoned_line
        assert tombstoned_line.startswith("10\t")
        with pytest.raises(ConfigurationError, match="deleted"):
            main(["predict", "--bundle", str(bundle), "--delete", "0", "5",
                  "--compact", "--nodes", "5"])
