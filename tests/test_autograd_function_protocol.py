"""Tests for the Function/Context protocol and backward-graph internals."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.autograd.function import BackwardNode, Context, Function, unbroadcast
from repro.errors import AutogradError


class Double(Function):
    """A minimal custom op used to exercise the protocol."""

    @staticmethod
    def forward(ctx, a):
        ctx.save_for_backward(a)
        ctx.extras["note"] = "doubled"
        return a * 2.0

    @staticmethod
    def backward(ctx, grad):
        return (grad * 2.0,)


class BrokenArity(Function):
    """Backward deliberately returns the wrong number of gradients."""

    @staticmethod
    def forward(ctx, a, b):
        return a + b

    @staticmethod
    def backward(ctx, grad):
        return (grad,)  # should be two


class TestContext:
    def test_save_and_retrieve(self):
        ctx = Context()
        ctx.save_for_backward(np.ones(2), 5)
        assert len(ctx.saved) == 2
        assert ctx.saved[1] == 5
        ctx.extras["key"] = "value"
        assert ctx.extras["key"] == "value"

    def test_saved_defaults_to_empty(self):
        assert Context().saved == ()


class TestCustomFunction:
    def test_apply_builds_graph_and_backward_works(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        y = Double.apply(x)
        assert np.allclose(y.data, [2.0, 4.0])
        assert y.requires_grad
        assert isinstance(y._node, BackwardNode)
        assert y._node.function is Double
        y.sum().backward()
        assert np.allclose(x.grad, [2.0, 2.0])

    def test_apply_without_grad_inputs_creates_leaf(self):
        y = Double.apply(Tensor([3.0]))
        assert not y.requires_grad
        assert y._node is None

    def test_custom_op_composes_with_builtin_ops(self):
        x = Tensor([1.0, -1.0], requires_grad=True)
        out = (Double.apply(x) * x).sum()  # 2x^2 -> d/dx = 4x
        out.backward()
        assert np.allclose(x.grad, [4.0, -4.0])

    def test_wrong_backward_arity_raises(self):
        a = Tensor([1.0], requires_grad=True)
        b = Tensor([2.0], requires_grad=True)
        out = BrokenArity.apply(a, b)
        with pytest.raises(AutogradError):
            out.sum().backward()

    def test_base_function_is_abstract(self):
        with pytest.raises(NotImplementedError):
            Function.forward(Context(), np.ones(1))
        with pytest.raises(NotImplementedError):
            Function.backward(Context(), np.ones(1))

    def test_non_array_forward_output_is_wrapped(self):
        class Scalar(Function):
            @staticmethod
            def forward(ctx, a):
                return float(a.sum())

            @staticmethod
            def backward(ctx, grad):
                return (None,)

        out = Scalar.apply(Tensor([1.0, 2.0]))
        assert isinstance(out.data, np.ndarray)
        assert out.data == pytest.approx(3.0)


class TestUnbroadcast:
    @pytest.mark.parametrize(
        "grad_shape, target_shape",
        [((3, 4), (3, 4)), ((3, 4), (4,)), ((3, 4), (1, 4)), ((3, 4), (3, 1)), ((2, 3, 4), (3, 4))],
    )
    def test_shapes(self, grad_shape, target_shape):
        grad = np.random.default_rng(0).normal(size=grad_shape)
        reduced = unbroadcast(grad, target_shape)
        assert reduced.shape == target_shape
        assert np.isclose(reduced.sum(), grad.sum())

    def test_identity_when_shapes_match(self):
        grad = np.ones((2, 2))
        assert unbroadcast(grad, (2, 2)) is grad


class TestGraphTraversal:
    def test_long_chain_backward(self):
        x = Tensor([1.0], requires_grad=True)
        y = x
        for _ in range(200):
            y = y + 1.0
        y.backward()
        assert np.allclose(x.grad, [1.0])

    def test_wide_fan_out_accumulates(self):
        x = Tensor([2.0], requires_grad=True)
        total = Tensor([0.0])
        branches = [x * float(i) for i in range(10)]
        for branch in branches:
            total = total + branch
        total.backward()
        assert np.allclose(x.grad, [sum(range(10))])

    def test_backward_twice_through_same_graph_accumulates(self):
        x = Tensor([3.0], requires_grad=True)
        y = (x * x).sum()
        y.backward()
        first = x.grad.copy()
        y.backward()
        assert np.allclose(x.grad, 2 * first)
