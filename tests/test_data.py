"""Tests for dataset containers, splits, generators, transforms and the registry."""

import numpy as np
import pytest

from repro.data import (
    NodeClassificationDataset,
    Split,
    add_feature_noise,
    available_datasets,
    get_dataset,
    label_rate_split,
    make_citeseer_like,
    make_coauthorship,
    make_cora_like,
    make_newsgroups_like,
    make_objects_like,
    make_pubmed_like,
    normalize_features,
    planetoid_split,
    register_dataset,
    row_normalize,
    standardize_features,
    stratified_split,
)
from repro.data.transforms import mask_features
from repro.errors import DatasetError, RegistryError
from repro.hypergraph import Hypergraph, hyperedge_homophily


class TestSplit:
    def test_valid_split(self):
        split = Split(train=np.array([0, 1]), val=np.array([2]), test=np.array([3, 4]))
        assert split.sizes == (2, 1, 2)
        split.check_within(5)

    def test_overlap_rejected(self):
        with pytest.raises(DatasetError):
            Split(train=np.array([0, 1]), val=np.array([1]), test=np.array([2]))

    def test_duplicates_rejected(self):
        with pytest.raises(DatasetError):
            Split(train=np.array([0, 0]), val=np.array([1]), test=np.array([2]))

    def test_empty_rejected(self):
        with pytest.raises(DatasetError):
            Split(train=np.array([], dtype=int), val=np.array([1]), test=np.array([2]))

    def test_check_within_bounds(self):
        split = Split(train=np.array([0]), val=np.array([1]), test=np.array([9]))
        with pytest.raises(DatasetError):
            split.check_within(5)


class TestSplitStrategies:
    def test_planetoid_split_counts(self):
        labels = np.repeat(np.arange(4), 50)
        split = planetoid_split(labels, train_per_class=5, n_val=40, seed=0)
        assert split.train.size == 20
        assert split.val.size == 40
        assert split.test.size == 140
        assert np.all(np.bincount(labels[split.train]) == 5)

    def test_planetoid_split_too_few_nodes(self):
        labels = np.array([0, 0, 1, 1])
        with pytest.raises(DatasetError):
            planetoid_split(labels, train_per_class=3)

    def test_planetoid_split_deterministic(self):
        labels = np.repeat(np.arange(3), 30)
        a = planetoid_split(labels, train_per_class=4, n_val=20, seed=5)
        b = planetoid_split(labels, train_per_class=4, n_val=20, seed=5)
        assert np.array_equal(a.train, b.train) and np.array_equal(a.test, b.test)

    def test_label_rate_split_scales_with_rate(self):
        labels = np.repeat(np.arange(4), 100)
        small = label_rate_split(labels, label_rate=0.02, seed=0)
        large = label_rate_split(labels, label_rate=0.2, seed=0)
        assert small.train.size < large.train.size
        assert small.train.size >= 4  # at least one per class
        with pytest.raises(ValueError):
            label_rate_split(labels, label_rate=0.0)

    def test_stratified_split_fractions(self):
        labels = np.repeat(np.arange(5), 20)
        split = stratified_split(labels, fractions=(0.5, 0.25, 0.25), seed=0)
        assert split.train.size == 50
        assert split.val.size == 25
        assert split.test.size == 25
        for cls in range(5):
            assert np.sum(labels[split.train] == cls) == 10

    def test_stratified_split_validation(self):
        labels = np.repeat(np.arange(3), 10)
        with pytest.raises(DatasetError):
            stratified_split(labels, fractions=(0.5, 0.5, 0.5))
        with pytest.raises(DatasetError):
            stratified_split(np.array([0, 1, 2]), fractions=(0.4, 0.3, 0.3))


class TestDatasetContainer:
    def test_consistency_checks(self, tiny_citation_dataset):
        dataset = tiny_citation_dataset
        assert dataset.n_nodes == 120
        assert dataset.n_classes == 3
        assert dataset.features.shape == (120, 40)
        assert dataset.label_rate == pytest.approx(24 / 120)
        assert dataset.class_distribution().sum() == 120

    def test_mismatched_shapes_rejected(self):
        hypergraph = Hypergraph(3, [[0, 1, 2]])
        split = Split(train=np.array([0]), val=np.array([1]), test=np.array([2]))
        with pytest.raises(DatasetError):
            NodeClassificationDataset(
                name="bad",
                features=np.zeros((4, 2)),
                labels=np.array([0, 1, 0]),
                hypergraph=hypergraph,
                split=split,
            )
        with pytest.raises(DatasetError):
            NodeClassificationDataset(
                name="bad",
                features=np.zeros((3, 2)),
                labels=np.array([0, 1, 0]),
                hypergraph=Hypergraph(5, [[0, 1]]),
                split=split,
            )

    def test_with_split_and_with_hypergraph(self, tiny_citation_dataset):
        dataset = tiny_citation_dataset
        new_split = stratified_split(dataset.labels, seed=1)
        replaced = dataset.with_split(new_split)
        assert replaced.split.train.size == new_split.train.size
        assert replaced.features is dataset.features
        new_hypergraph = Hypergraph(dataset.n_nodes, [[0, 1, 2]])
        assert dataset.with_hypergraph(new_hypergraph).hypergraph.n_hyperedges == 1

    def test_pairwise_graph_from_hypergraph(self, tiny_coauthorship_dataset):
        graph = tiny_coauthorship_dataset.pairwise_graph()
        assert graph.n_nodes == tiny_coauthorship_dataset.n_nodes
        assert graph.n_edges > 0

    def test_summary_keys(self, tiny_citation_dataset):
        summary = tiny_citation_dataset.summary()
        for key in ("name", "n_nodes", "n_hyperedges", "n_classes", "label_rate"):
            assert key in summary


class TestGenerators:
    @pytest.mark.parametrize(
        "factory, n_classes",
        [(make_cora_like, 7), (make_citeseer_like, 6), (make_pubmed_like, 3)],
    )
    def test_citation_generators_shapes(self, factory, n_classes):
        dataset = factory(seed=0)
        assert dataset.n_classes == n_classes
        assert dataset.hypergraph.n_hyperedges > 0
        assert dataset.graph is not None
        assert hyperedge_homophily(dataset.hypergraph, dataset.labels) > 0.5

    def test_generators_deterministic(self):
        a, b = make_cora_like(seed=3), make_cora_like(seed=3)
        assert np.allclose(a.features, b.features)
        assert a.hypergraph == b.hypergraph
        assert np.array_equal(a.split.train, b.split.train)
        c = make_cora_like(seed=4)
        assert not np.allclose(a.features, c.features)

    def test_coauthorship_hyperedge_sizes(self):
        dataset = make_coauthorship(n_nodes=120, n_classes=4, n_hyperedges=200, min_authors=2, max_authors=6, seed=0)
        sizes = dataset.hypergraph.hyperedge_sizes()
        assert sizes.min() >= 2 and sizes.max() <= 6
        assert dataset.metadata["family"] == "coauthorship"
        with pytest.raises(DatasetError):
            make_coauthorship(min_authors=5, max_authors=3)

    def test_objects_dataset_feature_only(self):
        dataset = make_objects_like(n_nodes=100, n_classes=5, view_dims=(8, 8), seed=0)
        assert dataset.n_features == 16
        assert dataset.graph is None
        assert dataset.metadata["native_structure"] == "feature_knn"

    def test_newsgroups_large_hyperedges(self):
        dataset = make_newsgroups_like(n_nodes=200, n_classes=4, n_features=150, n_word_hyperedges=40, seed=0)
        assert dataset.hypergraph.hyperedge_sizes().mean() > 4
        assert dataset.n_classes == 4

    def test_pubmed_features_row_normalised(self):
        dataset = make_pubmed_like(n_nodes=200, seed=0)
        row_sums = np.abs(dataset.features).sum(axis=1)
        assert np.allclose(row_sums[row_sums > 0], 1.0)


class TestTransforms:
    def test_row_normalize(self):
        features = np.array([[2.0, 2.0], [0.0, 0.0]])
        normalised = row_normalize(features)
        assert np.allclose(normalised[0], [0.5, 0.5])
        assert np.allclose(normalised[1], [0.0, 0.0])

    def test_normalize_features_unit_norm(self):
        features = np.random.default_rng(0).normal(size=(5, 3))
        norms = np.linalg.norm(normalize_features(features), axis=1)
        assert np.allclose(norms, 1.0)

    def test_standardize_features(self):
        features = np.random.default_rng(1).normal(5.0, 3.0, size=(200, 4))
        standardised = standardize_features(features)
        assert np.allclose(standardised.mean(axis=0), 0.0, atol=1e-9)
        assert np.allclose(standardised.std(axis=0), 1.0, atol=1e-9)

    def test_add_feature_noise(self):
        features = np.zeros((10, 4))
        noisy = add_feature_noise(features, 1.0, seed=0)
        assert noisy.std() > 0.5
        assert np.allclose(add_feature_noise(features, 0.0), features)
        with pytest.raises(ValueError):
            add_feature_noise(features, -1.0)

    def test_mask_features(self):
        features = np.ones((50, 20))
        masked = mask_features(features, 0.5, seed=0)
        assert 0.3 < np.mean(masked == 0.0) < 0.7
        assert np.allclose(mask_features(features, 0.0), features)


class TestRegistry:
    def test_all_registered_datasets_instantiate(self):
        names = available_datasets()
        assert len(names) >= 8
        assert "cora-cocitation" in names and "dblp-coauthorship" in names

    def test_get_dataset_with_overrides(self):
        dataset = get_dataset("cora-cocitation", seed=1, n_nodes=280)
        assert dataset.n_nodes == 280

    def test_get_dataset_case_insensitive(self):
        assert get_dataset("CORA-COCITATION", seed=0, n_nodes=280).name == "cora-cocitation"

    def test_unknown_dataset(self):
        with pytest.raises(RegistryError):
            get_dataset("does-not-exist")

    def test_register_duplicate_rejected_unless_overwrite(self):
        def factory(seed=None):
            return make_cora_like(n_nodes=280, seed=seed)

        register_dataset("custom-test-dataset", factory, overwrite=True)
        with pytest.raises(RegistryError):
            register_dataset("custom-test-dataset", factory)
        register_dataset("custom-test-dataset", factory, overwrite=True)
        assert get_dataset("custom-test-dataset", seed=0).n_nodes == 280
