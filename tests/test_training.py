"""Tests for metrics, result tables, the trainer and the experiment runner."""

import numpy as np
import pytest

from repro.core import DHGCN, DHGCNConfig
from repro.errors import ConfigurationError, ShapeError, TrainingError
from repro.models import GCN, HGNN, MLP
from repro.training import (
    ResultTable,
    TrainConfig,
    Trainer,
    accuracy,
    compare_methods,
    confusion_matrix,
    macro_f1,
    micro_f1,
    run_experiment,
)
from repro.training.experiment import best_method
from repro.training.results import format_mean_std


class TestMetrics:
    def test_accuracy(self):
        assert accuracy(np.array([0, 1, 1, 2]), np.array([0, 1, 2, 2])) == pytest.approx(0.75)
        assert accuracy(np.array([1]), np.array([1])) == 1.0

    def test_accuracy_shape_checks(self):
        with pytest.raises(ShapeError):
            accuracy(np.array([0, 1]), np.array([0]))
        with pytest.raises(ShapeError):
            accuracy(np.array([]), np.array([]))

    def test_confusion_matrix(self):
        matrix = confusion_matrix(np.array([0, 1, 1]), np.array([0, 1, 2]), n_classes=3)
        assert matrix[0, 0] == 1 and matrix[1, 1] == 1 and matrix[2, 1] == 1
        assert matrix.sum() == 3

    def test_macro_f1_perfect_and_degenerate(self):
        predictions = np.array([0, 1, 2, 0, 1, 2])
        assert macro_f1(predictions, predictions) == pytest.approx(1.0)
        assert macro_f1(np.array([0, 0, 0]), np.array([1, 1, 1]), n_classes=2) == pytest.approx(0.0)

    def test_macro_f1_handles_missing_classes(self):
        value = macro_f1(np.array([0, 0, 1]), np.array([0, 0, 1]), n_classes=5)
        assert value == pytest.approx(1.0)

    def test_micro_f1_equals_accuracy(self):
        predictions = np.array([0, 1, 2, 1])
        targets = np.array([0, 2, 2, 1])
        assert micro_f1(predictions, targets) == accuracy(predictions, targets)


class TestResultTable:
    def test_add_rows_and_render(self):
        table = ResultTable(["method", "accuracy"], title="demo")
        table.add_row(["GCN", 0.81234])
        table.add_row({"method": "DHGCN", "accuracy": 0.84})
        markdown = table.to_markdown()
        assert "| method | accuracy |" in markdown
        assert "0.8123" in markdown
        assert "### demo" in markdown
        assert len(table) == 2
        assert table.column("method") == ["GCN", "DHGCN"]

    def test_row_length_validation(self):
        table = ResultTable(["a", "b"])
        with pytest.raises(ValueError):
            table.add_row([1])
        with pytest.raises(KeyError):
            table.column("missing")
        with pytest.raises(ValueError):
            ResultTable([])

    def test_to_dict(self):
        table = ResultTable(["a"])
        table.add_row([1.0])
        payload = table.to_dict()
        assert payload["columns"] == ["a"] and payload["rows"] == [[1.0]]

    def test_format_mean_std(self):
        assert format_mean_std([0.8, 0.9]) == "85.00 ± 5.00"
        assert format_mean_std([], percent=True) == "n/a"
        assert format_mean_std([0.5], percent=False) == "0.50 ± 0.00"


class TestTrainConfig:
    def test_defaults(self):
        config = TrainConfig()
        assert config.epochs == 200 and config.optimizer == "adam"

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TrainConfig(epochs=0)
        with pytest.raises(ConfigurationError):
            TrainConfig(lr=0.0)
        with pytest.raises(ConfigurationError):
            TrainConfig(weight_decay=-1.0)
        with pytest.raises(ConfigurationError):
            TrainConfig(optimizer="rmsprop")
        with pytest.raises(ConfigurationError):
            TrainConfig(patience=0)
        with pytest.raises(ConfigurationError):
            TrainConfig(eval_every=0)
        with pytest.raises(ConfigurationError):
            TrainConfig(momentum=1.0)


class TestTrainer:
    def test_training_improves_over_untrained(self, tiny_citation_dataset):
        dataset = tiny_citation_dataset
        model = HGNN(dataset.n_features, dataset.n_classes, hidden_dim=16, seed=0)
        trainer = Trainer(model, dataset, TrainConfig(epochs=40, patience=None))
        before = trainer.evaluate()["test_accuracy"]
        result = trainer.train()
        assert result.test_accuracy > before
        assert result.test_accuracy > 0.5
        assert result.epochs_run == 40
        assert result.n_parameters == model.num_parameters()
        assert result.train_time > 0.0
        assert len(result.history["epoch"]) == 40

    def test_dhgcn_trains(self, tiny_citation_dataset):
        dataset = tiny_citation_dataset
        model = DHGCN(dataset.n_features, dataset.n_classes, DHGCNConfig(hidden_dim=16), seed=0)
        result = Trainer(model, dataset, TrainConfig(epochs=30, patience=None)).train()
        assert result.test_accuracy > 0.5
        assert model.dynamic_hypergraphs_built() > 0

    def test_early_stopping_cuts_training_short(self, tiny_citation_dataset):
        dataset = tiny_citation_dataset
        model = MLP(dataset.n_features, dataset.n_classes, hidden_dim=8, seed=0)
        result = Trainer(model, dataset, TrainConfig(epochs=500, patience=5)).train()
        assert result.epochs_run < 500

    def test_restore_best_keeps_best_validation_params(self, tiny_citation_dataset):
        dataset = tiny_citation_dataset
        model = GCN(dataset.n_features, dataset.n_classes, hidden_dim=8, seed=0)
        trainer = Trainer(model, dataset, TrainConfig(epochs=25, patience=None, restore_best=True))
        result = trainer.train()
        final_val = trainer.evaluate()["val_accuracy"]
        assert final_val == pytest.approx(result.best_val_accuracy)

    def test_predict_returns_labels_for_every_node(self, tiny_citation_dataset):
        dataset = tiny_citation_dataset
        model = MLP(dataset.n_features, dataset.n_classes, seed=0)
        trainer = Trainer(model, dataset, TrainConfig(epochs=5, patience=None))
        trainer.train()
        predictions = trainer.predict()
        assert predictions.shape == (dataset.n_nodes,)
        assert predictions.min() >= 0 and predictions.max() < dataset.n_classes

    def test_sgd_and_adamw_optimizers(self, tiny_citation_dataset):
        dataset = tiny_citation_dataset
        for optimizer in ("sgd", "adamw"):
            model = MLP(dataset.n_features, dataset.n_classes, seed=0)
            config = TrainConfig(epochs=10, optimizer=optimizer, lr=0.05, patience=None)
            result = Trainer(model, dataset, config).train()
            assert np.isfinite(result.test_accuracy)

    def test_trainer_rejects_non_model(self, tiny_citation_dataset):
        with pytest.raises(TrainingError):
            Trainer(object(), tiny_citation_dataset)

    def test_history_records_monotone_epochs(self, tiny_citation_dataset):
        dataset = tiny_citation_dataset
        model = MLP(dataset.n_features, dataset.n_classes, seed=0)
        result = Trainer(model, dataset, TrainConfig(epochs=8, patience=None, eval_every=2)).train()
        epochs = result.history["epoch"]
        assert epochs == sorted(epochs)
        assert result.summary()["test_accuracy"] == result.test_accuracy


class TestExperimentRunner:
    def test_run_experiment_aggregates_seeds(self, tiny_citation_dataset):
        dataset = tiny_citation_dataset
        experiment = run_experiment(
            "MLP",
            lambda ds, seed: MLP(ds.n_features, ds.n_classes, hidden_dim=8, seed=seed),
            lambda seed: dataset,
            seeds=[0, 1],
            train_config=TrainConfig(epochs=5, patience=None),
        )
        assert len(experiment.runs) == 2
        assert 0.0 <= experiment.mean_test_accuracy <= 1.0
        assert experiment.std_test_accuracy >= 0.0
        assert "±" in experiment.formatted_accuracy()
        assert experiment.summary()["n_runs"] == 2
        assert experiment.n_parameters > 0

    def test_compare_methods_builds_table(self, tiny_citation_dataset):
        dataset = tiny_citation_dataset
        methods = {
            "MLP": lambda ds, seed: MLP(ds.n_features, ds.n_classes, hidden_dim=8, seed=seed),
            "HGNN": lambda ds, seed: HGNN(ds.n_features, ds.n_classes, hidden_dim=8, seed=seed),
        }
        table, results = compare_methods(
            methods,
            {"tiny": lambda seed: dataset},
            seeds=[0],
            train_config=TrainConfig(epochs=5, patience=None),
            title="unit-test",
        )
        assert len(table) == 2
        assert set(results["tiny"]) == {"MLP", "HGNN"}
        assert "unit-test" in table.to_markdown()
        assert best_method(results["tiny"]) in {"MLP", "HGNN"}

    def test_best_method_empty_raises(self):
        with pytest.raises(ValueError):
            best_method({})
