"""Tests for the utils package (rng, validation, timer, io, logging) and errors."""

import logging

import numpy as np
import pytest

from repro.errors import (
    AutogradError,
    ConfigurationError,
    DatasetError,
    GraphStructureError,
    HypergraphStructureError,
    RegistryError,
    ReproError,
    ShapeError,
    TrainingError,
)
from repro.utils import (
    Timer,
    check_fraction,
    check_in_options,
    check_positive,
    check_square,
    check_type,
    get_logger,
    set_global_seed,
    spawn_rngs,
    timed,
)
from repro.utils.io import load_arrays, load_json, save_arrays, save_json
from repro.utils.rng import as_rng, get_global_seed, seeds_from
from repro.utils.validation import check_1d_labels, check_probability_matrix, check_same_length


class TestErrors:
    def test_hierarchy(self):
        for error in (
            ShapeError,
            AutogradError,
            GraphStructureError,
            HypergraphStructureError,
            DatasetError,
            ConfigurationError,
            TrainingError,
            RegistryError,
        ):
            assert issubclass(error, ReproError)

    def test_catchable_as_builtin(self):
        assert issubclass(ShapeError, ValueError)
        assert issubclass(AutogradError, RuntimeError)
        assert issubclass(RegistryError, KeyError)


class TestRng:
    def test_as_rng_from_int_is_deterministic(self):
        assert as_rng(42).integers(0, 100) == as_rng(42).integers(0, 100)

    def test_as_rng_passthrough(self):
        generator = np.random.default_rng(0)
        assert as_rng(generator) is generator

    def test_as_rng_rejects_bad_types(self):
        with pytest.raises(TypeError):
            as_rng("seed")

    def test_spawn_rngs_independent_and_reproducible(self):
        children_a = spawn_rngs(7, 3)
        children_b = spawn_rngs(7, 3)
        draws_a = [child.integers(0, 1000) for child in children_a]
        draws_b = [child.integers(0, 1000) for child in children_b]
        assert draws_a == draws_b
        assert len(set(draws_a)) > 1

    def test_spawn_rngs_negative_raises(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_seeds_from(self):
        assert seeds_from(0, 5) == seeds_from(0, 5)
        assert len(set(seeds_from(0, 5))) == 5

    def test_set_global_seed(self):
        set_global_seed(123)
        assert get_global_seed() == 123


class TestValidation:
    def test_check_positive(self):
        assert check_positive(3, "x") == 3
        with pytest.raises(ValueError):
            check_positive(0, "x")
        assert check_positive(0, "x", strict=False) == 0

    def test_check_fraction(self):
        assert check_fraction(0.5, "p") == 0.5
        with pytest.raises(ValueError):
            check_fraction(1.5, "p")
        with pytest.raises(ValueError):
            check_fraction(0.0, "p", inclusive=False)

    def test_check_in_options_and_type(self):
        assert check_in_options("a", ["a", "b"], "opt") == "a"
        with pytest.raises(ValueError):
            check_in_options("c", ["a", "b"], "opt")
        assert check_type(3, int, "x") == 3
        with pytest.raises(TypeError):
            check_type("3", int, "x")

    def test_check_square(self):
        assert check_square(np.eye(3)).shape == (3, 3)
        with pytest.raises(ShapeError):
            check_square(np.ones((2, 3)))

    def test_check_probability_matrix(self):
        check_probability_matrix(np.array([[0.1, 0.9]]))
        with pytest.raises(ValueError):
            check_probability_matrix(np.array([[1.2]]))

    def test_check_same_length(self):
        check_same_length("a", [1, 2], "b", [3, 4])
        with pytest.raises(ShapeError):
            check_same_length("a", [1], "b", [2, 3])

    def test_check_1d_labels(self):
        labels = check_1d_labels(np.array([0.0, 1.0, 2.0]))
        assert labels.dtype.kind == "i"
        with pytest.raises(ShapeError):
            check_1d_labels(np.zeros((2, 2)))
        with pytest.raises(ValueError):
            check_1d_labels(np.array([0.5, 1.0]))
        with pytest.raises(ShapeError):
            check_1d_labels(np.array([0, 1]), n=3)


class TestTimer:
    def test_accumulates_and_counts(self):
        timer = Timer()
        with timer.measure():
            sum(range(1000))
        with timer.measure():
            sum(range(1000))
        assert timer.count == 2
        assert timer.total > 0.0
        assert timer.mean == pytest.approx(timer.total / 2)

    def test_double_start_raises(self):
        timer = Timer()
        timer.start()
        with pytest.raises(RuntimeError):
            timer.start()

    def test_stop_without_start_raises(self):
        with pytest.raises(RuntimeError):
            Timer().stop()

    def test_reset(self):
        timer = Timer()
        with timer.measure():
            pass
        timer.reset()
        assert timer.count == 0 and timer.total == 0.0

    def test_timed_contextmanager(self):
        with timed() as timer:
            sum(range(100))
        assert timer.total > 0.0

    def test_mean_of_unused_timer_is_zero(self):
        assert Timer().mean == 0.0


class TestIo:
    def test_json_roundtrip_with_numpy_types(self, tmp_path):
        payload = {"accuracy": np.float64(0.93), "epochs": np.int64(50), "values": np.arange(3)}
        path = save_json(tmp_path / "results.json", payload)
        loaded = load_json(path)
        assert loaded["accuracy"] == pytest.approx(0.93)
        assert loaded["epochs"] == 50
        assert loaded["values"] == [0, 1, 2]

    def test_json_rejects_unserialisable(self, tmp_path):
        with pytest.raises(TypeError):
            save_json(tmp_path / "bad.json", {"object": object()})

    def test_arrays_roundtrip(self, tmp_path):
        arrays = {"features": np.random.default_rng(0).normal(size=(4, 3))}
        path = save_arrays(tmp_path / "arrays.npz", arrays)
        loaded = load_arrays(path)
        assert np.allclose(loaded["features"], arrays["features"])


class TestLogging:
    def test_namespaced_logger(self):
        assert get_logger().name == "repro"
        assert get_logger("training").name == "repro.training"
        assert get_logger("repro.data").name == "repro.data"
        assert isinstance(get_logger("x"), logging.Logger)
