"""Tests for the pairwise-graph substrate."""

import networkx as nx
import numpy as np
import pytest
import scipy.sparse as sp

from repro.errors import GraphStructureError
from repro.graph import (
    Graph,
    erdos_renyi_graph,
    gcn_normalized_adjacency,
    knn_graph,
    normalized_laplacian,
    random_walk_matrix,
    stochastic_block_model,
    unnormalized_laplacian,
)


class TestGraph:
    def test_basic_construction_and_dedup(self):
        graph = Graph(4, [(0, 1), (1, 0), (2, 3), (1, 1)])
        assert graph.n_nodes == 4
        assert graph.n_edges == 2
        assert graph.edges == [(0, 1), (2, 3)]

    def test_out_of_range_edge_raises(self):
        with pytest.raises(GraphStructureError):
            Graph(3, [(0, 5)])
        with pytest.raises(GraphStructureError):
            Graph(0, [])

    def test_degrees_and_neighbors(self):
        graph = Graph(4, [(0, 1), (0, 2), (2, 3)])
        assert np.array_equal(graph.degrees(), [2, 1, 2, 1])
        assert graph.neighbors(0) == [1, 2]
        assert graph.neighbors(3) == [2]
        with pytest.raises(GraphStructureError):
            graph.neighbors(9)

    def test_has_edge(self):
        graph = Graph(3, [(0, 1)])
        assert graph.has_edge(1, 0)
        assert not graph.has_edge(0, 2)
        assert not graph.has_edge(1, 1)

    def test_adjacency_symmetric_with_and_without_loops(self):
        graph = Graph(3, [(0, 1), (1, 2)])
        adjacency = graph.adjacency()
        assert sp.issparse(adjacency)
        assert (adjacency != adjacency.T).nnz == 0
        assert adjacency.diagonal().sum() == 0
        with_loops = graph.adjacency(self_loops=True)
        assert with_loops.diagonal().sum() == 3

    def test_edge_index_has_both_directions(self):
        graph = Graph(3, [(0, 1)])
        edge_index = graph.edge_index()
        assert edge_index.shape == (2, 2)
        assert {(0, 1), (1, 0)} == set(map(tuple, edge_index.T.tolist()))

    def test_empty_graph_edge_index(self):
        assert Graph(3).edge_index().shape == (2, 0)

    def test_networkx_roundtrip(self):
        graph = Graph(5, [(0, 1), (2, 4)])
        back = Graph.from_networkx(graph.to_networkx())
        assert back == graph

    def test_from_adjacency_dense_and_sparse(self):
        adjacency = np.array([[0, 1, 0], [1, 0, 1], [0, 1, 0]])
        dense = Graph.from_adjacency(adjacency)
        sparse = Graph.from_adjacency(sp.csr_matrix(adjacency))
        assert dense == sparse
        assert dense.n_edges == 2

    def test_from_adjacency_invalid(self):
        with pytest.raises(GraphStructureError):
            Graph.from_adjacency(np.ones((2, 3)))

    def test_connected_components(self):
        graph = Graph(5, [(0, 1), (2, 3)])
        components = graph.connected_components()
        assert sorted(map(tuple, components)) == [(0, 1), (2, 3), (4,)]


class TestLaplacians:
    def test_gcn_normalized_adjacency_rows(self):
        graph = Graph(3, [(0, 1), (1, 2)])
        operator = gcn_normalized_adjacency(graph)
        dense = operator.toarray()
        assert np.allclose(dense, dense.T)
        eigenvalues = np.linalg.eigvalsh(dense)
        assert eigenvalues.max() <= 1.0 + 1e-9

    def test_unnormalized_laplacian_rows_sum_to_zero(self):
        graph = Graph(4, [(0, 1), (1, 2), (2, 3)])
        laplacian = unnormalized_laplacian(graph).toarray()
        assert np.allclose(laplacian.sum(axis=1), 0.0)
        assert np.all(np.linalg.eigvalsh(laplacian) >= -1e-9)

    def test_normalized_laplacian_spectrum_bounded(self):
        graph = erdos_renyi_graph(20, 0.3, seed=0)
        eigenvalues = np.linalg.eigvalsh(normalized_laplacian(graph).toarray())
        assert eigenvalues.min() >= -1e-9
        assert eigenvalues.max() <= 2.0 + 1e-9

    def test_random_walk_rows_stochastic(self):
        graph = Graph(4, [(0, 1), (1, 2), (2, 3), (3, 0)])
        transition = random_walk_matrix(graph).toarray()
        assert np.allclose(transition.sum(axis=1), 1.0)

    def test_isolated_nodes_handled(self):
        graph = Graph(3, [(0, 1)])
        transition = random_walk_matrix(graph).toarray()
        assert np.allclose(transition[2], 0.0)
        operator = gcn_normalized_adjacency(graph)
        assert np.isfinite(operator.toarray()).all()


class TestGenerators:
    def test_erdos_renyi_edge_count_scales_with_p(self):
        sparse = erdos_renyi_graph(50, 0.05, seed=0)
        dense = erdos_renyi_graph(50, 0.5, seed=0)
        assert dense.n_edges > sparse.n_edges

    def test_erdos_renyi_deterministic(self):
        assert erdos_renyi_graph(30, 0.2, seed=5) == erdos_renyi_graph(30, 0.2, seed=5)

    def test_sbm_homophily(self):
        probabilities = np.array([[0.5, 0.01], [0.01, 0.5]])
        graph, labels = stochastic_block_model([30, 30], probabilities, seed=0)
        assert graph.n_nodes == 60
        assert np.array_equal(np.bincount(labels), [30, 30])
        intra = sum(1 for u, v in graph.edges if labels[u] == labels[v])
        inter = graph.n_edges - intra
        assert intra > 5 * max(inter, 1)

    def test_sbm_validation(self):
        with pytest.raises(GraphStructureError):
            stochastic_block_model([], np.zeros((0, 0)))
        with pytest.raises(GraphStructureError):
            stochastic_block_model([5, 5], np.array([[0.5, 0.1], [0.2, 0.5]]))
        with pytest.raises(GraphStructureError):
            stochastic_block_model([5], np.array([[0.5, 0.1], [0.1, 0.5]]))

    def test_knn_graph_degrees(self):
        rng = np.random.default_rng(0)
        features = rng.normal(size=(30, 5))
        graph = knn_graph(features, 3)
        assert graph.n_nodes == 30
        assert np.all(graph.degrees() >= 3)

    def test_knn_graph_validation(self):
        with pytest.raises(GraphStructureError):
            knn_graph(np.zeros(5), 2)
        with pytest.raises(GraphStructureError):
            knn_graph(np.zeros((4, 2)), 5)

    def test_knn_graph_clusters_connect_within(self):
        rng = np.random.default_rng(1)
        cluster_a = rng.normal(0.0, 0.1, size=(10, 2))
        cluster_b = rng.normal(10.0, 0.1, size=(10, 2))
        graph = knn_graph(np.vstack([cluster_a, cluster_b]), 2)
        cross = [1 for u, v in graph.edges if (u < 10) != (v < 10)]
        assert not cross


def test_graph_equality_and_networkx_consistency():
    graph = erdos_renyi_graph(15, 0.3, seed=2)
    nx_graph = graph.to_networkx()
    assert isinstance(nx_graph, nx.Graph)
    assert nx_graph.number_of_edges() == graph.n_edges
    assert Graph.from_networkx(nx_graph) == graph
