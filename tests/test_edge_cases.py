"""Edge-case and failure-injection tests across the stack.

These tests target the unhappy paths: degenerate structures, non-finite
values, single-class corner cases and mis-use of the training loop.
"""

import numpy as np
import pytest

from repro.autograd import Tensor, cross_entropy
from repro.core import DHGCN, DHGCNConfig, DynamicHypergraphBuilder
from repro.data.dataset import NodeClassificationDataset, Split
from repro.errors import TrainingError
from repro.hypergraph import Hypergraph, hypergraph_propagation_operator, kmeans, knn_hyperedges
from repro.models import GCN, HGNN, MLP
from repro.nn import Linear
from repro.training import TrainConfig, Trainer
from repro.training.trainer import TrainResult


def toy_dataset(n_nodes=24, n_classes=3, n_features=6, seed=0, hyperedges=None):
    """A minimal hand-rolled dataset for corner-case experiments."""
    rng = np.random.default_rng(seed)
    labels = np.arange(n_nodes) % n_classes
    features = rng.normal(size=(n_nodes, n_features)) + labels[:, None]
    if hyperedges is None:
        hyperedges = [
            [node, (node + 1) % n_nodes, (node + 2) % n_nodes] for node in range(n_nodes)
        ]
    split = Split(
        train=np.arange(0, n_nodes, 3),
        val=np.arange(1, n_nodes, 3),
        test=np.arange(2, n_nodes, 3),
    )
    return NodeClassificationDataset(
        name="toy",
        features=features,
        labels=labels,
        hypergraph=Hypergraph(n_nodes, hyperedges),
        split=split,
    )


class TestDegenerateStructures:
    def test_training_on_empty_hypergraph(self):
        dataset = toy_dataset().with_hypergraph(Hypergraph.empty(24))
        model = HGNN(dataset.n_features, dataset.n_classes, hidden_dim=8, seed=0)
        result = Trainer(model, dataset, TrainConfig(epochs=5, patience=None)).train()
        assert np.isfinite(result.test_accuracy)

    def test_dhgcn_on_empty_static_hypergraph(self):
        dataset = toy_dataset().with_hypergraph(Hypergraph.empty(24))
        model = DHGCN(dataset.n_features, dataset.n_classes, DHGCNConfig(hidden_dim=8), seed=0)
        result = Trainer(model, dataset, TrainConfig(epochs=5, patience=None)).train()
        assert np.isfinite(result.test_accuracy)

    def test_single_giant_hyperedge(self):
        dataset = toy_dataset(hyperedges=[list(range(24))])
        operator = hypergraph_propagation_operator(dataset.hypergraph)
        assert operator.shape == (24, 24)
        model = HGNN(dataset.n_features, dataset.n_classes, hidden_dim=8, seed=0)
        result = Trainer(model, dataset, TrainConfig(epochs=5, patience=None)).train()
        assert np.isfinite(result.test_accuracy)

    def test_duplicate_hyperedges_are_allowed(self):
        hypergraph = Hypergraph(5, [[0, 1, 2], [0, 1, 2], [3, 4]])
        assert hypergraph.n_hyperedges == 3
        operator = hypergraph_propagation_operator(hypergraph).toarray()
        assert np.allclose(operator, operator.T)

    def test_builder_with_constant_features(self):
        builder = DynamicHypergraphBuilder(k_neighbors=2, n_clusters=2, seed=0)
        hypergraph = builder.build_hypergraph(np.zeros((10, 3)))
        assert hypergraph.n_nodes == 10
        operator = hypergraph_propagation_operator(hypergraph)
        assert np.all(np.isfinite(operator.toarray()))

    def test_kmeans_with_identical_points(self):
        result = kmeans(np.zeros((8, 2)), 3, seed=0)
        assert result.inertia == pytest.approx(0.0)
        assert result.labels.shape == (8,)

    def test_knn_hyperedges_two_nodes(self):
        hypergraph = knn_hyperedges(np.array([[0.0], [1.0]]), 1)
        assert hypergraph.n_hyperedges == 2
        assert all(len(edge) == 2 for edge in hypergraph.hyperedges)


class TestTrainingFailureModes:
    def test_nan_loss_raises_training_error(self):
        dataset = toy_dataset()
        model = MLP(dataset.n_features, dataset.n_classes, hidden_dim=4, seed=0)
        # Poison the parameters so the first forward produces NaNs.
        model.layers[0].weight.data[:] = np.nan
        with pytest.raises(TrainingError):
            Trainer(model, dataset, TrainConfig(epochs=2, patience=None)).train()

    def test_exploding_lr_detected(self):
        dataset = toy_dataset()
        model = GCN(dataset.n_features, dataset.n_classes, hidden_dim=4, seed=0)
        config = TrainConfig(epochs=60, lr=1e4, patience=None)
        # Either training diverges (TrainingError) or it survives with finite loss;
        # silent NaN propagation is the one unacceptable outcome.
        try:
            result = Trainer(model, dataset, config).train()
        except TrainingError:
            return
        assert np.isfinite(result.test_accuracy)

    def test_model_without_setup_cannot_be_used_directly(self):
        dataset = toy_dataset()
        model = GCN(dataset.n_features, dataset.n_classes, seed=0)
        with pytest.raises(TrainingError):
            model(Tensor(dataset.features))

    def test_trainer_runs_setup_automatically(self):
        dataset = toy_dataset()
        model = GCN(dataset.n_features, dataset.n_classes, hidden_dim=4, seed=0)
        trainer = Trainer(model, dataset, TrainConfig(epochs=1, patience=None))
        assert isinstance(trainer.train(), TrainResult)

    def test_eval_every_reduces_history_length(self):
        dataset = toy_dataset()
        model = MLP(dataset.n_features, dataset.n_classes, hidden_dim=4, seed=0)
        result = Trainer(model, dataset, TrainConfig(epochs=10, eval_every=5, patience=None)).train()
        assert len(result.history["epoch"]) <= 4


class TestNumericalRobustness:
    def test_cross_entropy_with_extreme_logits(self):
        logits = Tensor(np.array([[1e4, -1e4], [-1e4, 1e4]]), requires_grad=True)
        loss = cross_entropy(logits, np.array([0, 1]))
        assert np.isfinite(float(loss.data))
        loss.backward()
        assert np.all(np.isfinite(logits.grad))

    def test_linear_with_large_inputs(self):
        layer = Linear(4, 2, seed=0)
        out = layer(Tensor(np.full((3, 4), 1e6)))
        assert np.all(np.isfinite(out.data))

    def test_propagation_operator_with_huge_weights(self):
        hypergraph = Hypergraph(4, [[0, 1], [2, 3]], [1e9, 1e-9])
        operator = hypergraph_propagation_operator(hypergraph).toarray()
        assert np.all(np.isfinite(operator))
        # Normalisation cancels the weight scale within each hyperedge block.
        assert operator.max() <= 1.0 + 1e-9

    def test_single_class_dataset_trains(self):
        # All nodes share one label: training must converge and the labelled
        # nodes must all be classified correctly (unlabelled nodes can still
        # be flipped by feature noise since features carry no class signal).
        dataset = toy_dataset(n_classes=1)
        assert dataset.n_classes == 1
        model = MLP(dataset.n_features, 2, hidden_dim=4, dropout=0.0, seed=0)
        trainer = Trainer(model, dataset, TrainConfig(epochs=60, patience=None))
        result = trainer.train()
        assert result.best_val_accuracy == pytest.approx(1.0)
        assert result.test_accuracy > 0.8
