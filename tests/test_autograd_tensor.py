"""Tests for the Tensor class and the backward machinery."""

import numpy as np
import pytest

from repro.autograd import Tensor, as_tensor, no_grad, zeros_like
from repro.autograd.tensor import is_grad_enabled
from repro.errors import AutogradError


class TestTensorConstruction:
    def test_from_list(self):
        t = Tensor([[1.0, 2.0], [3.0, 4.0]])
        assert t.shape == (2, 2)
        assert t.dtype == np.float64

    def test_integer_data_promoted_to_float(self):
        t = Tensor(np.array([1, 2, 3]))
        assert t.dtype == np.float64

    def test_from_tensor_shares_semantics(self):
        t = Tensor([1.0, 2.0])
        u = Tensor(t)
        assert np.allclose(u.data, t.data)

    def test_object_dtype_rejected(self):
        with pytest.raises(TypeError):
            Tensor(np.array(["a", "b"], dtype=object))

    def test_repr_mentions_requires_grad(self):
        assert "requires_grad" in repr(Tensor([1.0], requires_grad=True))
        assert "requires_grad" not in repr(Tensor([1.0]))

    def test_len_and_size(self):
        t = Tensor(np.zeros((4, 3)))
        assert len(t) == 4
        assert t.size == 12
        assert t.ndim == 2


class TestTensorBasics:
    def test_item_scalar(self):
        assert Tensor(np.array(3.5)).item() == pytest.approx(3.5)

    def test_item_non_scalar_raises(self):
        with pytest.raises(ValueError):
            Tensor([1.0, 2.0]).item()

    def test_detach_drops_grad_tracking(self):
        t = Tensor([1.0, 2.0], requires_grad=True)
        d = t.detach()
        assert not d.requires_grad
        assert d.is_leaf

    def test_copy_is_independent(self):
        t = Tensor([1.0, 2.0], requires_grad=True)
        c = t.copy()
        c.data[0] = 99.0
        assert t.data[0] == 1.0
        assert c.requires_grad

    def test_argmax(self):
        t = Tensor([[1.0, 5.0, 2.0], [7.0, 0.0, 3.0]])
        assert np.array_equal(t.argmax(axis=1), np.array([1, 0]))

    def test_zeros_like(self):
        t = Tensor(np.ones((2, 3)))
        z = zeros_like(t)
        assert z.shape == (2, 3)
        assert np.all(z.data == 0.0)

    def test_as_tensor_passthrough(self):
        t = Tensor([1.0])
        assert as_tensor(t) is t
        assert isinstance(as_tensor([1.0, 2.0]), Tensor)

    def test_comparisons_return_numpy(self):
        t = Tensor([1.0, 2.0, 3.0])
        assert isinstance(t > 1.5, np.ndarray)
        assert np.array_equal(t > 1.5, np.array([False, True, True]))
        assert np.array_equal(t == Tensor([1.0, 0.0, 3.0]), np.array([True, False, True]))


class TestBackward:
    def test_simple_chain(self):
        x = Tensor([2.0, 3.0], requires_grad=True)
        y = (x * x).sum()
        y.backward()
        assert np.allclose(x.grad, [4.0, 6.0])

    def test_gradient_accumulates_across_backward_calls(self):
        x = Tensor([1.0], requires_grad=True)
        (x * 2.0).sum().backward()
        (x * 2.0).sum().backward()
        assert np.allclose(x.grad, [4.0])

    def test_zero_grad(self):
        x = Tensor([1.0], requires_grad=True)
        (x * 3.0).sum().backward()
        x.zero_grad()
        assert x.grad is None

    def test_backward_without_grad_on_non_scalar_raises(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        y = x * 2.0
        with pytest.raises(AutogradError):
            y.backward()

    def test_backward_with_explicit_gradient(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        y = x * 3.0
        y.backward(np.array([1.0, 0.5]))
        assert np.allclose(x.grad, [3.0, 1.5])

    def test_backward_on_non_grad_tensor_raises(self):
        x = Tensor([1.0])
        with pytest.raises(AutogradError):
            x.backward()

    def test_diamond_graph_accumulates(self):
        x = Tensor([2.0], requires_grad=True)
        a = x * 3.0
        b = x * 4.0
        y = (a + b).sum()
        y.backward()
        assert np.allclose(x.grad, [7.0])

    def test_reused_tensor_in_one_expression(self):
        x = Tensor([3.0], requires_grad=True)
        y = (x * x * x).sum()  # d/dx x^3 = 3 x^2
        y.backward()
        assert np.allclose(x.grad, [27.0])

    def test_constant_branch_gets_no_grad(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        c = Tensor([5.0, 5.0])
        (x * c).sum().backward()
        assert c.grad is None


class TestNoGrad:
    def test_no_grad_disables_tracking(self):
        x = Tensor([1.0], requires_grad=True)
        with no_grad():
            y = x * 2.0
        assert not y.requires_grad
        assert y.is_leaf

    def test_flag_restored_after_context(self):
        assert is_grad_enabled()
        with no_grad():
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_flag_restored_on_exception(self):
        with pytest.raises(RuntimeError):
            with no_grad():
                raise RuntimeError("boom")
        assert is_grad_enabled()
