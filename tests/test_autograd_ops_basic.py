"""Gradient correctness of elementwise and matrix arithmetic."""

import numpy as np
import pytest

from repro.autograd import Tensor, check_gradients, matmul
from repro.autograd.ops_basic import add, div, exp, log, mul, neg, pow_, sqrt, sub
from repro.errors import ShapeError


def _t(shape, seed, positive=False):
    rng = np.random.default_rng(seed)
    data = rng.normal(size=shape)
    if positive:
        data = np.abs(data) + 0.5
    return Tensor(data, requires_grad=True)


class TestForwardValues:
    def test_add_sub_mul_div(self):
        a, b = Tensor([2.0, 4.0]), Tensor([1.0, 8.0])
        assert np.allclose(add(a, b).data, [3.0, 12.0])
        assert np.allclose(sub(a, b).data, [1.0, -4.0])
        assert np.allclose(mul(a, b).data, [2.0, 32.0])
        assert np.allclose(div(a, b).data, [2.0, 0.5])

    def test_neg_pow_exp_log_sqrt(self):
        a = Tensor([1.0, 4.0])
        assert np.allclose(neg(a).data, [-1.0, -4.0])
        assert np.allclose(pow_(a, 2).data, [1.0, 16.0])
        assert np.allclose(exp(Tensor([0.0])).data, [1.0])
        assert np.allclose(log(Tensor([np.e])).data, [1.0])
        assert np.allclose(sqrt(a).data, [1.0, 2.0])

    def test_operator_overloads_with_scalars(self):
        a = Tensor([2.0])
        assert np.allclose((a + 1).data, [3.0])
        assert np.allclose((1 + a).data, [3.0])
        assert np.allclose((a - 1).data, [1.0])
        assert np.allclose((1 - a).data, [-1.0])
        assert np.allclose((a * 3).data, [6.0])
        assert np.allclose((3 / a).data, [1.5])
        assert np.allclose((-a).data, [-2.0])
        assert np.allclose((a ** 3).data, [8.0])

    def test_matmul_shapes(self):
        a = Tensor(np.ones((2, 3)))
        b = Tensor(np.ones((3, 4)))
        assert matmul(a, b).shape == (2, 4)
        v = Tensor(np.ones(3))
        assert matmul(v, b).shape == (4,)
        assert matmul(a, Tensor(np.ones(3))).shape == (2,)
        assert matmul(v, v).shape == ()

    def test_matmul_rank_error(self):
        with pytest.raises(ShapeError):
            matmul(Tensor(np.ones((2, 2, 2))), Tensor(np.ones((2, 2, 2))))


class TestGradients:
    def test_add_broadcast(self):
        a, b = _t((3, 4), 0), _t((4,), 1)
        check_gradients(lambda a, b: (a + b).sum(), [a, b])

    def test_sub_broadcast(self):
        a, b = _t((3, 4), 2), _t((3, 1), 3)
        check_gradients(lambda a, b: (a - b).sum(), [a, b])

    def test_mul_broadcast(self):
        a, b = _t((2, 5), 4), _t((5,), 5)
        check_gradients(lambda a, b: (a * b).sum(), [a, b])

    def test_div(self):
        a, b = _t((3, 3), 6), _t((3, 3), 7, positive=True)
        check_gradients(lambda a, b: (a / b).sum(), [a, b])

    def test_scalar_division_of_constant(self):
        a = _t((4,), 8, positive=True)
        check_gradients(lambda a: (2.0 / a).sum(), [a])

    def test_pow(self):
        a = _t((3, 2), 9, positive=True)
        check_gradients(lambda a: (a ** 3).sum(), [a])

    def test_exp_log_sqrt(self):
        a = _t((4,), 10, positive=True)
        check_gradients(lambda a: exp(a).sum(), [a])
        check_gradients(lambda a: log(a).sum(), [a])
        check_gradients(lambda a: sqrt(a).sum(), [a])

    def test_matmul_2d_2d(self):
        a, b = _t((3, 4), 11), _t((4, 2), 12)
        check_gradients(lambda a, b: (a @ b).sum(), [a, b])

    def test_matmul_1d_2d(self):
        a, b = _t((4,), 13), _t((4, 3), 14)
        check_gradients(lambda a, b: (a @ b).sum(), [a, b])

    def test_matmul_2d_1d(self):
        a, b = _t((3, 4), 15), _t((4,), 16)
        check_gradients(lambda a, b: (a @ b).sum(), [a, b])

    def test_matmul_1d_1d(self):
        a, b = _t((5,), 17), _t((5,), 18)
        check_gradients(lambda a, b: (a @ b).sum(), [a, b])

    def test_composite_expression(self):
        a, b = _t((3, 3), 19, positive=True), _t((3, 3), 20)
        check_gradients(lambda a, b: ((a * b + b) / (a + 2.0)).sum(), [a, b])
