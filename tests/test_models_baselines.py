"""Tests for the baseline models (MLP, GCN, GAT, HGNN, HyperGCN, DHGNN)."""

import numpy as np
import pytest

from repro.autograd import Tensor, cross_entropy
from repro.errors import ConfigurationError, TrainingError
from repro.models import DHGNN, GAT, GCN, HGNN, MLP, HyperGCN
from repro.models.hypergcn import hypergcn_adjacency

ALL_MODELS = [MLP, GCN, GAT, HGNN, HyperGCN, DHGNN]


def make_model(model_class, dataset, seed=0):
    return model_class(dataset.n_features, dataset.n_classes, seed=seed)


class TestCommonInterface:
    @pytest.mark.parametrize("model_class", ALL_MODELS)
    def test_forward_shape(self, model_class, tiny_citation_dataset):
        dataset = tiny_citation_dataset
        model = make_model(model_class, dataset).setup(dataset)
        logits = model(Tensor(dataset.features))
        assert logits.shape == (dataset.n_nodes, dataset.n_classes)
        assert np.all(np.isfinite(logits.data))

    @pytest.mark.parametrize("model_class", ALL_MODELS)
    def test_forward_before_setup_raises(self, model_class, tiny_citation_dataset):
        dataset = tiny_citation_dataset
        model = make_model(model_class, dataset)
        with pytest.raises(TrainingError):
            model(Tensor(dataset.features))

    @pytest.mark.parametrize("model_class", ALL_MODELS)
    def test_gradients_reach_all_parameters(self, model_class, tiny_citation_dataset):
        dataset = tiny_citation_dataset
        model = make_model(model_class, dataset).setup(dataset)
        model.train()
        loss = cross_entropy(model(Tensor(dataset.features)), dataset.labels, dataset.split.train)
        loss.backward()
        for name, parameter in model.named_parameters():
            assert parameter.grad is not None, f"no gradient for {name}"
            assert np.all(np.isfinite(parameter.grad)), f"non-finite gradient for {name}"

    @pytest.mark.parametrize("model_class", ALL_MODELS)
    def test_deterministic_initialisation(self, model_class, tiny_citation_dataset):
        dataset = tiny_citation_dataset
        a = make_model(model_class, dataset, seed=3)
        b = make_model(model_class, dataset, seed=3)
        for (_, pa), (_, pb) in zip(a.named_parameters(), b.named_parameters()):
            assert np.allclose(pa.data, pb.data)

    @pytest.mark.parametrize("model_class", ALL_MODELS)
    def test_works_on_feature_only_dataset(self, model_class, tiny_object_dataset):
        dataset = tiny_object_dataset
        model = make_model(model_class, dataset).setup(dataset)
        logits = model(Tensor(dataset.features))
        assert logits.shape == (dataset.n_nodes, dataset.n_classes)

    @pytest.mark.parametrize("model_class", [MLP, GCN, HGNN, HyperGCN, DHGNN])
    def test_invalid_layer_count(self, model_class):
        with pytest.raises(ConfigurationError):
            model_class(10, 3, n_layers=0)

    @pytest.mark.parametrize("model_class", ALL_MODELS)
    def test_eval_mode_is_deterministic(self, model_class, tiny_citation_dataset):
        dataset = tiny_citation_dataset
        model = make_model(model_class, dataset).setup(dataset)
        model.eval()
        first = model(Tensor(dataset.features)).data
        second = model(Tensor(dataset.features)).data
        assert np.allclose(first, second)


class TestSpecificBehaviour:
    def test_mlp_ignores_structure(self, tiny_citation_dataset, tiny_coauthorship_dataset):
        dataset = tiny_citation_dataset
        model = MLP(dataset.n_features, dataset.n_classes, seed=0).setup(dataset)
        model.eval()
        base = model(Tensor(dataset.features)).data
        # Re-setup with a different dataset's structure: output must not change.
        model.setup(dataset.with_hypergraph(tiny_coauthorship_dataset.hypergraph)
                    if dataset.n_nodes == tiny_coauthorship_dataset.hypergraph.n_nodes
                    else dataset)
        assert np.allclose(model(Tensor(dataset.features)).data, base)

    def test_gcn_structure_affects_output(self, tiny_coauthorship_dataset):
        # The co-authorship dataset has no explicit pairwise graph, so GCN
        # derives it from the hypergraph: changing the hypergraph must change
        # the propagation operator and therefore the output.
        dataset = tiny_coauthorship_dataset
        model = GCN(dataset.n_features, dataset.n_classes, seed=0).setup(dataset)
        model.eval()
        base = model(Tensor(dataset.features)).data
        shuffled = dataset.with_hypergraph(dataset.hypergraph.remove_hyperedges(range(0, 50)))
        model.setup(shuffled)
        assert not np.allclose(model(Tensor(dataset.features)).data, base)

    def test_gat_heads_configuration(self, tiny_citation_dataset):
        dataset = tiny_citation_dataset
        model = GAT(dataset.n_features, dataset.n_classes, hidden_dim=4, n_heads=2, seed=0)
        model.setup(dataset)
        assert model(Tensor(dataset.features)).shape == (dataset.n_nodes, dataset.n_classes)
        with pytest.raises(ConfigurationError):
            GAT(10, 3, n_heads=0)

    def test_hgnn_uses_static_hypergraph_operator(self, tiny_coauthorship_dataset):
        dataset = tiny_coauthorship_dataset
        model = HGNN(dataset.n_features, dataset.n_classes, seed=0).setup(dataset)
        operator = model._operator
        assert operator.shape == (dataset.n_nodes, dataset.n_nodes)
        dense = operator.toarray()
        assert np.allclose(dense, dense.T)

    def test_hypergcn_adjacency_mediator_weights(self):
        features = np.array([[0.0], [1.0], [10.0]])
        adjacency = hypergcn_adjacency([(0, 1, 2)], features, 3, use_mediators=True).toarray()
        # Farthest pair is (0, 2); node 1 is the mediator; weight 1/(2*3-3) = 1/3.
        assert adjacency[0, 2] == pytest.approx(1.0 / 3.0)
        assert adjacency[0, 1] == pytest.approx(1.0 / 3.0)
        assert adjacency[1, 2] == pytest.approx(1.0 / 3.0)

    def test_hypergcn_adjacency_without_mediators(self):
        features = np.array([[0.0], [1.0], [10.0]])
        adjacency = hypergcn_adjacency([(0, 1, 2)], features, 3, use_mediators=False).toarray()
        assert adjacency[0, 2] == pytest.approx(1.0)
        assert adjacency[0, 1] == 0.0

    def test_hypergcn_empty_hyperedges(self):
        adjacency = hypergcn_adjacency([], np.zeros((4, 2)), 4)
        assert adjacency.nnz == 0

    def test_dhgnn_refresh_schedule(self, tiny_citation_dataset):
        dataset = tiny_citation_dataset
        model = DHGNN(
            dataset.n_features, dataset.n_classes, refresh_period=2, k_neighbors=3, n_clusters=3, seed=0
        ).setup(dataset)
        model(Tensor(dataset.features))
        operators_after_first = [op.copy() for op in model._operators]
        model.on_epoch(1)  # 1 % 2 != 0 -> no refresh scheduled
        model(Tensor(dataset.features))
        assert all(
            np.allclose(a.toarray(), b.toarray())
            for a, b in zip(operators_after_first, model._operators)
        )
        model.on_epoch(2)  # refresh scheduled
        model(Tensor(dataset.features))
        changed = any(
            not np.allclose(a.toarray(), b.toarray())
            for a, b in zip(operators_after_first, model._operators)
        )
        assert changed

    def test_dhgnn_validation(self):
        with pytest.raises(ConfigurationError):
            DHGNN(10, 3, k_neighbors=0)
        with pytest.raises(ConfigurationError):
            DHGNN(10, 3, n_clusters=0)
        with pytest.raises(ConfigurationError):
            DHGNN(10, 3, refresh_period=0)
