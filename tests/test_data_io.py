"""Tests for dataset persistence (save_dataset / load_dataset)."""

import numpy as np
import pytest

from repro.data.io import load_dataset, save_dataset
from repro.errors import DatasetError


class TestDatasetIo:
    def test_roundtrip_preserves_everything(self, tmp_path, tiny_citation_dataset):
        dataset = tiny_citation_dataset
        save_dataset(dataset, tmp_path / "snapshot")
        loaded = load_dataset(tmp_path / "snapshot")

        assert loaded.name == dataset.name
        assert np.allclose(loaded.features, dataset.features)
        assert np.array_equal(loaded.labels, dataset.labels)
        assert loaded.hypergraph == dataset.hypergraph
        assert np.array_equal(loaded.split.train, dataset.split.train)
        assert np.array_equal(loaded.split.val, dataset.split.val)
        assert np.array_equal(loaded.split.test, dataset.split.test)
        assert (loaded.graph is None) == (dataset.graph is None)
        if dataset.graph is not None:
            assert loaded.graph == dataset.graph

    def test_roundtrip_feature_only_dataset(self, tmp_path, tiny_object_dataset):
        dataset = tiny_object_dataset
        save_dataset(dataset, tmp_path / "objects")
        loaded = load_dataset(tmp_path / "objects")
        assert loaded.graph is None
        assert loaded.hypergraph.n_hyperedges == dataset.hypergraph.n_hyperedges
        assert loaded.metadata["native_structure"] == "feature_knn"

    def test_hyperedge_weights_preserved(self, tmp_path, tiny_coauthorship_dataset):
        dataset = tiny_coauthorship_dataset
        reweighted = dataset.with_hypergraph(
            dataset.hypergraph.with_weights(
                np.linspace(0.5, 2.0, dataset.hypergraph.n_hyperedges)
            )
        )
        save_dataset(reweighted, tmp_path / "weighted")
        loaded = load_dataset(tmp_path / "weighted")
        assert np.allclose(loaded.hypergraph.weights, reweighted.hypergraph.weights)

    def test_loading_missing_path_raises(self, tmp_path):
        with pytest.raises(DatasetError):
            load_dataset(tmp_path / "does-not-exist")

    def test_loaded_dataset_is_trainable(self, tmp_path, tiny_citation_dataset):
        from repro.models import HGNN
        from repro.training import TrainConfig, Trainer

        save_dataset(tiny_citation_dataset, tmp_path / "train-me")
        loaded = load_dataset(tmp_path / "train-me")
        model = HGNN(loaded.n_features, loaded.n_classes, hidden_dim=8, seed=0)
        result = Trainer(model, loaded, TrainConfig(epochs=5, patience=None)).train()
        assert 0.0 <= result.test_accuracy <= 1.0
