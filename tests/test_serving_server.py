"""Tests of the batched async serving front-end (``repro.serving.server``).

The load-bearing guarantees pinned here:

* :meth:`InferenceSession.fork` replicas are **bit-identical** to their
  parent and fully isolated from it (and from each other) afterwards;
* a :class:`SessionPool`'s reader fleet stays bit-identical to a fresh
  ``to_frozen()`` snapshot of its generation — before, during and after an
  operator fan-out swap while the writer mutates, including when readers
  run concurrently with the writer on worker threads;
* the :class:`MicroBatcher` coalesces concurrent requests within the batch
  window into one ``predict_batch`` dispatch, degrades to per-request
  dispatch at window 0, maps per-request validation errors to the one
  offending submitter, and sheds load (:class:`ServerOverloadedError`)
  once ``max_queue_depth`` requests are pending;
* the HTTP front-end: every route round-trips JSON, responses are
  bit-identical to a direct session on the same bundle, writes are
  read-your-writes (a client sees its own insert immediately), draining
  returns 503, and bad requests map to 400 without failing their batch;
* ``repro.cli serve`` boots a real server process that answers HTTP.

No pytest-asyncio here: each async scenario runs under ``asyncio.run``
inside a plain sync test.
"""

import asyncio
import json
import os
import re
import socket
import subprocess
import sys
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import numpy as np
import pytest

from repro import (
    DHGNN,
    FrozenModel,
    InferenceSession,
    TrainConfig,
    Trainer,
    reset_default_engine,
)
from repro.errors import ConfigurationError
from repro.serving.server import (
    MicroBatcher,
    ServerConfig,
    ServerOverloadedError,
    ServingServer,
    SessionPool,
)


@pytest.fixture(scope="module")
def bundle_path(tiny_citation_dataset, tmp_path_factory):
    """One trained DHGNN bundle shared by every test in this module."""
    reset_default_engine()
    dataset = tiny_citation_dataset
    model = DHGNN(dataset.n_features, dataset.n_classes, hidden_dim=8, seed=0)
    trainer = Trainer(
        model,
        dataset,
        TrainConfig(epochs=4, patience=None, neighbor_backend="incremental"),
    )
    trainer.train()
    path = tmp_path_factory.mktemp("serving_server") / "bundle.npz"
    trainer.export_frozen(str(path))
    return path


def _new_rows(dataset, count, seed=5):
    rng = np.random.default_rng(seed)
    base = dataset.features[rng.choice(dataset.n_nodes, count, replace=False)]
    return base + rng.normal(scale=0.05, size=base.shape)


# --------------------------------------------------------------------------- #
# InferenceSession.fork
# --------------------------------------------------------------------------- #
class TestFork:
    def test_fork_is_bit_identical(self, bundle_path):
        parent = InferenceSession(FrozenModel.load(bundle_path))
        parent.predict()
        child = parent.fork()
        assert np.array_equal(
            child.predict(output="logits"), parent.predict(output="logits")
        )
        assert np.array_equal(
            child.predict([3, 7], output="embeddings"),
            parent.predict([3, 7], output="embeddings"),
        )

    def test_fork_inherits_cached_forward(self, bundle_path):
        parent = InferenceSession(FrozenModel.load(bundle_path))
        parent.predict()
        child = parent.fork(seed_cache=False)
        # The fork answers from the parent's cached forward: no refresh, no
        # forward of its own.
        assert np.array_equal(child.predict([0, 4]), parent.predict([0, 4]))
        assert child.forwards == 0 and child.refreshes == 0

    def test_fork_carries_mid_lifecycle_state(self, tiny_citation_dataset, bundle_path):
        dataset = tiny_citation_dataset
        parent = InferenceSession(FrozenModel.load(bundle_path))
        parent.insert_nodes(_new_rows(dataset, 3))
        parent.delete_nodes([1, 6])
        parent.predict()
        child = parent.fork()
        assert child.n_nodes == parent.n_nodes
        assert child.n_alive == parent.n_alive
        assert np.array_equal(
            child.predict(output="logits"), parent.predict(output="logits")
        )
        with pytest.raises(ConfigurationError, match="deleted"):
            child.predict([1])

    def test_fork_is_isolated_both_ways(self, tiny_citation_dataset, bundle_path):
        dataset = tiny_citation_dataset
        parent = InferenceSession(FrozenModel.load(bundle_path))
        parent.predict()
        baseline = parent.predict(output="logits").copy()
        child = parent.fork()
        # Child churns: parent's answers must not move.
        child.insert_nodes(_new_rows(dataset, 4, seed=8))
        child.delete_nodes([0])
        child.compact()
        child.predict()
        assert np.array_equal(parent.predict(output="logits"), baseline)
        assert parent.n_nodes == dataset.n_nodes
        # Parent churns: the (already churned) child must not move either.
        child_view = child.predict(output="logits").copy()
        parent.update_features([5], dataset.features[[5]] + 0.3)
        parent.predict()
        assert np.array_equal(child.predict(output="logits"), child_view)


# --------------------------------------------------------------------------- #
# SessionPool: fan-out swap bit-identity
# --------------------------------------------------------------------------- #
class TestSessionPool:
    def _replica_sessions(self, pool):
        return [replica.session for replica in pool.replicas()]

    def test_readers_match_frozen_snapshot_across_swap(
        self, tiny_citation_dataset, bundle_path
    ):
        # The satellite guarantee: N reader sessions are bit-identical to a
        # fresh to_frozen() snapshot of their generation, before and after an
        # operator fan-out swap, while the writer mutates in between.
        dataset = tiny_citation_dataset
        pool = SessionPool(FrozenModel.load(bundle_path), replicas=3)
        snapshot = InferenceSession(pool.writer.to_frozen())
        reference = snapshot.predict(output="logits")
        old_readers = self._replica_sessions(pool)
        for session in old_readers:
            assert np.array_equal(session.predict(output="logits"), reference)

        pool.insert(_new_rows(dataset, 4))  # mutate + republish
        new_snapshot = InferenceSession(pool.writer.to_frozen())
        new_reference = new_snapshot.predict(output="logits")
        assert new_reference.shape[0] == reference.shape[0] + 4
        for session in self._replica_sessions(pool):
            assert np.array_equal(session.predict(output="logits"), new_reference)
        # Pre-swap readers still serve their own complete generation.
        for session in old_readers:
            assert np.array_equal(session.predict(output="logits"), reference)

    def test_readers_stay_identical_while_writer_mutates_concurrently(
        self, tiny_citation_dataset, bundle_path
    ):
        dataset = tiny_citation_dataset
        pool = SessionPool(FrozenModel.load(bundle_path), replicas=3)
        reference = InferenceSession(pool.writer.to_frozen()).predict(output="logits")
        readers = self._replica_sessions(pool)
        stop = False

        def churn():
            for round_index in range(4):
                pool.writer.insert_nodes(_new_rows(dataset, 2, seed=round_index))
                pool.writer.update_features(
                    [round_index], dataset.features[[round_index]] + 0.1
                )
                pool.publish()
            return pool.generation

        def read_loop(session):
            checks = 0
            while not stop:
                assert np.array_equal(session.predict(output="logits"), reference)
                checks += 1
            return checks

        with ThreadPoolExecutor(max_workers=4) as executor:
            futures = [executor.submit(read_loop, session) for session in readers]
            generation = executor.submit(churn).result()
            stop = True
            for future in futures:
                assert future.result() > 0
        assert generation == 5  # initial publish + 4 republishes
        # The post-churn fleet serves the post-churn snapshot, bit-identically.
        final = InferenceSession(pool.writer.to_frozen()).predict(output="logits")
        for session in self._replica_sessions(pool):
            assert np.array_equal(session.predict(output="logits"), final)

    def test_delete_and_compact_republish(self, bundle_path):
        pool = SessionPool(FrozenModel.load(bundle_path), replicas=2)
        n_before = pool.writer.n_nodes
        result = pool.delete([2, 9])
        assert result["n_alive"] == n_before - 2 and result["tombstones"] == 2
        for session in self._replica_sessions(pool):
            with pytest.raises(ConfigurationError, match="deleted"):
                session.predict([2])
            assert np.array_equal(
                session.predict(output="labels"), pool.writer.predict(output="labels")
            )
        result = pool.compact()
        assert result["n_nodes"] == n_before - 2
        for session in self._replica_sessions(pool):
            assert session.n_nodes == n_before - 2

    def test_checkpoints_published_generations(self, tmp_path, bundle_path):
        checkpoint = tmp_path / "checkpoint.npz"
        pool = SessionPool(
            FrozenModel.load(bundle_path), replicas=1, checkpoint_path=checkpoint
        )
        assert checkpoint.exists() and pool.checkpoints == 1
        reference = pool.writer.predict(output="logits")
        warm = InferenceSession(FrozenModel.load(checkpoint))
        assert np.array_equal(warm.predict(output="logits"), reference)
        # A tombstoned generation is not bundleable and is skipped.
        pool.delete([0])
        assert pool.checkpoints == 1
        pool.compact()
        assert pool.checkpoints == 2


# --------------------------------------------------------------------------- #
# MicroBatcher
# --------------------------------------------------------------------------- #
class TestMicroBatcher:
    def _batcher(self, bundle_path, **kwargs):
        pool = SessionPool(FrozenModel.load(bundle_path), replicas=1)
        executor = ThreadPoolExecutor(max_workers=2)
        kwargs.setdefault("window_s", 0.05)
        kwargs.setdefault("max_batch_size", 64)
        kwargs.setdefault("max_queue_depth", 128)
        return pool, executor, MicroBatcher(pool, executor, **kwargs)

    def test_concurrent_requests_coalesce_into_one_dispatch(self, bundle_path):
        pool, executor, batcher = self._batcher(bundle_path)
        direct = InferenceSession(FrozenModel.load(bundle_path))

        async def scenario():
            batcher.start()
            results = await asyncio.gather(
                *[
                    batcher.submit({"nodes": [node], "output": "logits"})
                    for node in range(10)
                ]
            )
            await batcher.stop()
            return results

        results = asyncio.run(scenario())
        for node, result in enumerate(results):
            assert np.array_equal(result, direct.predict([node], output="logits"))
        assert batcher.stats()["batches"] == 1
        assert batcher.stats()["mean_batch_size"] == 10.0
        executor.shutdown()

    def test_window_zero_disables_coalescing(self, bundle_path):
        pool, executor, batcher = self._batcher(bundle_path, window_s=0.0)

        async def scenario():
            batcher.start()
            await asyncio.gather(
                *[batcher.submit({"nodes": [node]}) for node in range(7)]
            )
            await batcher.stop()

        asyncio.run(scenario())
        stats = batcher.stats()
        assert stats["batches"] == 7 and stats["max_batch_size"] == 1
        executor.shutdown()

    def test_one_bad_request_fails_only_its_submitter(self, bundle_path):
        pool, executor, batcher = self._batcher(bundle_path)
        direct = InferenceSession(FrozenModel.load(bundle_path))

        async def scenario():
            batcher.start()
            results = await asyncio.gather(
                batcher.submit({"nodes": [3]}),
                batcher.submit({"nodes": 7.5}),
                batcher.submit({"nodes": [5], "output": "logits"}),
                return_exceptions=True,
            )
            await batcher.stop()
            return results

        good, bad, also_good = asyncio.run(scenario())
        assert np.array_equal(good, direct.predict([3]))
        assert isinstance(bad, ConfigurationError) and "7.5" in str(bad)
        assert np.array_equal(also_good, direct.predict([5], output="logits"))
        assert batcher.stats()["batches"] == 1  # they shared one dispatch
        executor.shutdown()

    def test_queue_depth_sheds_load(self, bundle_path):
        pool, executor, batcher = self._batcher(bundle_path, max_queue_depth=2)

        async def scenario():
            # The dispatcher is NOT started: submissions park in the queue.
            first = asyncio.ensure_future(batcher.submit({"nodes": [0]}))
            second = asyncio.ensure_future(batcher.submit({"nodes": [1]}))
            await asyncio.sleep(0)
            with pytest.raises(ServerOverloadedError, match="full"):
                await batcher.submit({"nodes": [2]})
            assert batcher.stats()["rejected"] == 1
            # Draining the queue re-admits new work.
            batcher.start()
            await asyncio.gather(first, second)
            await batcher.submit({"nodes": [2]})
            await batcher.stop()

        asyncio.run(scenario())
        executor.shutdown()


# --------------------------------------------------------------------------- #
# HTTP front-end
# --------------------------------------------------------------------------- #
async def _http(reader, writer, method, path, payload=None):
    body = json.dumps(payload).encode() if payload is not None else b""
    writer.write(
        (
            f"{method} {path} HTTP/1.1\r\nHost: test\r\n"
            f"Content-Length: {len(body)}\r\n\r\n"
        ).encode()
        + body
    )
    await writer.drain()
    head = await reader.readuntil(b"\r\n\r\n")
    status = int(head.split(b" ", 2)[1])
    marker = head.index(b"Content-Length: ") + 16
    length = int(head[marker : head.index(b"\r", marker)])
    return status, json.loads(await reader.readexactly(length))


class _Client:
    """One keep-alive connection to a test server."""

    def __init__(self, port):
        self.port = port

    async def __aenter__(self):
        self.reader, self.writer = await asyncio.open_connection(
            "127.0.0.1", self.port
        )
        return self

    async def __aexit__(self, *exc):
        self.writer.close()

    async def request(self, method, path, payload=None):
        return await _http(self.reader, self.writer, method, path, payload)


class TestServingServerHTTP:
    def _serve(self, bundle_path, scenario, **config_kwargs):
        config_kwargs.setdefault("port", 0)
        config_kwargs.setdefault("replicas", 2)
        config_kwargs.setdefault("batch_window_ms", 2.0)

        async def run():
            server = ServingServer(
                FrozenModel.load(bundle_path), ServerConfig(**config_kwargs)
            )
            await server.start()
            try:
                async with _Client(server.port) as client:
                    return await scenario(server, client)
            finally:
                await server.shutdown()

        return asyncio.run(run())

    def test_health_stats_and_predict(self, bundle_path):
        direct = InferenceSession(FrozenModel.load(bundle_path))

        async def scenario(server, client):
            status, health = await client.request("GET", "/healthz")
            assert status == 200 and health["status"] == "ok"
            assert health["generation"] == 1

            status, answer = await client.request("POST", "/predict", {"node": 5})
            assert status == 200
            assert answer["result"] == int(direct.predict(5))

            status, answer = await client.request(
                "POST", "/predict", {"nodes": [0, 3, 8], "output": "logits"}
            )
            assert status == 200
            assert np.array_equal(
                np.asarray(answer["result"]),
                direct.predict([0, 3, 8], output="logits"),
            )

            status, answer = await client.request(
                "POST", "/predict", {"nodes": None, "output": "labels"}
            )
            assert status == 200
            assert answer["result"] == direct.predict().tolist()

            status, stats = await client.request("GET", "/stats")
            assert status == 200
            assert stats["batcher"]["requests"] == 3
            assert stats["pool"]["replicas"] == 2

        self._serve(bundle_path, scenario)

    def test_error_mapping(self, bundle_path):
        async def scenario(server, client):
            assert (await client.request("GET", "/nope"))[0] == 404
            assert (await client.request("POST", "/nope", {}))[0] == 404
            status, payload = await client.request("POST", "/predict", {"node": 3.7})
            assert status == 400 and "3.7" in payload["error"]
            status, payload = await client.request(
                "POST", "/predict", {"nodes": [10_000]}
            )
            assert status == 400 and "node ids" in payload["error"]
            status, payload = await client.request("POST", "/insert", {})
            assert status == 400 and "features" in payload["error"]
            # Malformed JSON body.
            client.writer.write(
                b"POST /predict HTTP/1.1\r\nHost: t\r\nContent-Length: 4\r\n\r\n{{{{"
            )
            head = await client.reader.readuntil(b"\r\n\r\n")
            assert b"400" in head.split(b"\r\n", 1)[0]
            marker = head.index(b"Content-Length: ") + 16
            await client.reader.readexactly(
                int(head[marker : head.index(b"\r", marker)])
            )
            # An unsupported method.
            assert (await client.request("PUT", "/predict", {}))[0] == 405

        self._serve(bundle_path, scenario)

    def test_bad_request_does_not_poison_batch(self, bundle_path):
        direct = InferenceSession(FrozenModel.load(bundle_path))

        async def scenario(server, client):
            async with _Client(server.port) as second:
                good, bad = await asyncio.gather(
                    client.request(
                        "POST", "/predict", {"nodes": [1, 2], "output": "labels"}
                    ),
                    second.request("POST", "/predict", {"node": 2.5}),
                )
            assert good[0] == 200
            assert good[1]["result"] == direct.predict([1, 2]).tolist()
            assert bad[0] == 400 and "2.5" in bad[1]["error"]

        self._serve(bundle_path, scenario, batch_window_ms=25.0)

    def test_writes_are_read_your_writes(self, tiny_citation_dataset, bundle_path):
        dataset = tiny_citation_dataset

        async def scenario(server, client):
            rows = _new_rows(dataset, 2).tolist()
            status, inserted = await client.request(
                "POST", "/insert", {"features": rows}
            )
            assert status == 200 and inserted["generation"] == 2
            new_ids = inserted["ids"]
            assert len(new_ids) == 2

            # The very next read sees the insert (new replicas already live).
            status, answer = await client.request(
                "POST", "/predict", {"nodes": new_ids}
            )
            assert status == 200 and len(answer["result"]) == 2
            assert answer["generation"] == 2

            status, updated = await client.request(
                "POST", "/update", {"nodes": [0], "features": [rows[0]]}
            )
            assert status == 200 and updated["generation"] == 3

            status, deleted = await client.request(
                "POST", "/delete", {"nodes": [new_ids[1]]}
            )
            assert status == 200 and deleted["tombstones"] == 1
            status, payload = await client.request(
                "POST", "/predict", {"nodes": [new_ids[1]]}
            )
            assert status == 400 and "deleted" in payload["error"]

            status, compacted = await client.request("POST", "/compact", {})
            assert status == 200
            assert compacted["n_nodes"] == dataset.n_nodes + 1
            status, reassigned = await client.request("POST", "/reassign", {})
            assert status == 200 and "moves" in reassigned

            status, health = await client.request("GET", "/healthz")
            assert health["n_alive"] == dataset.n_nodes + 1

        self._serve(bundle_path, scenario)

    def test_server_matches_direct_session_bit_for_bit(self, bundle_path):
        direct = InferenceSession(FrozenModel.load(bundle_path))

        async def scenario(server, client):
            rng = np.random.default_rng(0)
            for _ in range(8):
                nodes = rng.integers(0, direct.n_nodes, 4).tolist()
                for output in ("labels", "logits", "embeddings"):
                    status, answer = await client.request(
                        "POST", "/predict", {"nodes": nodes, "output": output}
                    )
                    assert status == 200
                    expected = direct.predict(nodes, output=output)
                    got = np.asarray(answer["result"], dtype=expected.dtype)
                    assert np.array_equal(got, expected)

        self._serve(bundle_path, scenario)

    def test_draining_returns_503(self, bundle_path):
        async def scenario(server, client):
            server._draining = True
            status, payload = await client.request("POST", "/predict", {"node": 0})
            assert status == 503 and "draining" in payload["error"]
            status, health = await client.request("GET", "/healthz")
            assert status == 200 and health["status"] == "draining"

        self._serve(bundle_path, scenario)

    def test_overload_returns_429(self, bundle_path):
        async def scenario(server, client):
            # Stop the dispatcher so admitted requests park in the queue.
            server.batcher._dispatcher.cancel()
            await asyncio.sleep(0)
            pending = [
                asyncio.ensure_future(server.batcher.submit({"nodes": [i]}))
                for i in range(2)
            ]
            await asyncio.sleep(0)
            status, payload = await client.request("POST", "/predict", {"node": 0})
            assert status == 429 and "full" in payload["error"]
            for future in pending:
                future.cancel()
            server.batcher.pending = 0

        self._serve(bundle_path, scenario, max_queue_depth=2)

    def test_config_validation(self):
        with pytest.raises(ConfigurationError, match="replicas"):
            ServerConfig(replicas=0)
        with pytest.raises(ConfigurationError, match="batch_window_ms"):
            ServerConfig(batch_window_ms=-1.0)
        with pytest.raises(ConfigurationError, match="max_batch_size"):
            ServerConfig(max_batch_size=0)
        with pytest.raises(ConfigurationError, match="max_queue_depth"):
            ServerConfig(max_queue_depth=0)


# --------------------------------------------------------------------------- #
# SessionPool.acquire: exception safety + round-robin fairness
# --------------------------------------------------------------------------- #
class TestAcquireRegression:
    """A raising request handler must never leak a permanently-busy replica,
    and the round-robin cursor must advance past the replica actually chosen
    (not blindly by one) so a skipped-over busy replica doesn't make the next
    pick land on the same neighbour forever."""

    def test_raising_handler_never_leaks_a_busy_replica(self, bundle_path):
        pool = SessionPool(FrozenModel.load(bundle_path), replicas=2)

        async def scenario():
            async def request(i):
                async with pool.acquire() as session:
                    await asyncio.sleep(0)
                    if i % 2:
                        raise RuntimeError("handler blew up")
                    return session.predict([0])

            results = await asyncio.gather(
                *[request(i) for i in range(20)], return_exceptions=True
            )
            assert sum(isinstance(r, RuntimeError) for r in results) == 10
            # No replica is left locked, and the fleet still serves.
            assert all(not replica.lock.locked() for replica in pool.replicas())
            async with pool.acquire() as session:
                session.predict([0])

        asyncio.run(scenario())

    def test_raising_predict_batch_under_concurrency(self, bundle_path):
        # End-to-end through the MicroBatcher: predict_batch itself blowing
        # up fails every submitter of the batch but releases the replica, so
        # the very next request succeeds on the same fleet.
        pool = SessionPool(FrozenModel.load(bundle_path), replicas=2)
        executor = ThreadPoolExecutor(max_workers=2)
        batcher = MicroBatcher(
            pool, executor, window_s=0.02, max_batch_size=64, max_queue_depth=128
        )
        originals = [replica.session.predict_batch for replica in pool.replicas()]

        def boom(requests, on_error="return"):
            raise RuntimeError("replica died mid-batch")

        async def scenario():
            batcher.start()
            for replica in pool.replicas():
                replica.session.predict_batch = boom
            failures = await asyncio.gather(
                *[batcher.submit({"nodes": [i]}) for i in range(8)],
                return_exceptions=True,
            )
            assert all(isinstance(f, RuntimeError) for f in failures)
            assert all(not replica.lock.locked() for replica in pool.replicas())
            for replica, original in zip(pool.replicas(), originals):
                replica.session.predict_batch = original
            recovered = await batcher.submit({"nodes": [0]})
            await batcher.stop()
            return recovered

        recovered = asyncio.run(scenario())
        direct = InferenceSession(FrozenModel.load(bundle_path))
        assert np.array_equal(recovered, direct.predict([0]))
        executor.shutdown()

    def test_round_robin_cycles_all_replicas(self, bundle_path):
        pool = SessionPool(FrozenModel.load(bundle_path), replicas=3)

        async def scenario():
            for _ in range(9):
                async with pool.acquire():
                    pass

        asyncio.run(scenario())
        assert [replica.served for replica in pool.replicas()] == [3, 3, 3]

    def test_round_robin_stays_fair_around_a_busy_replica(self, bundle_path):
        pool = SessionPool(FrozenModel.load(bundle_path), replicas=3)

        async def scenario():
            blocked = pool.replicas()[0]
            await blocked.lock.acquire()  # replica 0 wedged for the duration
            try:
                for _ in range(8):
                    async with pool.acquire():
                        pass
            finally:
                blocked.lock.release()

        asyncio.run(scenario())
        served = [replica.served for replica in pool.replicas()]
        assert served[0] == 0
        # The two free replicas split the work evenly — the cursor advances
        # past the chosen replica, it does not keep re-landing on one.
        assert sum(served[1:]) == 8 and abs(served[1] - served[2]) <= 1

    def test_all_busy_acquire_waits_instead_of_failing(self, bundle_path):
        pool = SessionPool(FrozenModel.load(bundle_path), replicas=2)

        async def scenario():
            for replica in pool.replicas():
                await replica.lock.acquire()

            async def late_request():
                async with pool.acquire() as session:
                    return session.predict([1])

            waiter = asyncio.ensure_future(late_request())
            await asyncio.sleep(0)
            assert not waiter.done()  # parked, not errored
            for replica in pool.replicas():
                replica.lock.release()
            return await asyncio.wait_for(waiter, timeout=5)

        result = asyncio.run(scenario())
        direct = InferenceSession(FrozenModel.load(bundle_path))
        assert np.array_equal(result, direct.predict([1]))


# --------------------------------------------------------------------------- #
# Sharded serving: ShardedSession + sharded SessionPool
# --------------------------------------------------------------------------- #
class TestShardedServing:
    @pytest.mark.parametrize("n_shards", [1, 2, 4])
    def test_sharded_session_lifecycle_matches_unsharded(
        self, tiny_citation_dataset, bundle_path, n_shards
    ):
        from repro.serving import ShardedSession

        dataset = tiny_citation_dataset
        plain = InferenceSession(FrozenModel.load(bundle_path))
        sharded = ShardedSession(FrozenModel.load(bundle_path), n_shards=n_shards)

        def check(stage):
            assert np.array_equal(
                sharded.predict(output="logits"),
                plain.predict(output="logits"),
            ), stage

        check("fresh")
        rows = _new_rows(dataset, 5)
        plain.insert_nodes(rows)
        sharded.insert_nodes(rows)
        check("insert")
        plain.update_features([2, 8], dataset.features[[2, 8]] + 0.2)
        sharded.update_features([2, 8], dataset.features[[2, 8]] + 0.2)
        check("update")
        plain.delete_nodes([0, 7, 11])
        sharded.delete_nodes([0, 7, 11])
        check("delete")
        assert np.array_equal(plain.compact(), sharded.compact())
        check("compact")
        sharded.close()

    def test_sharded_bundle_round_trips_and_auto_shards(
        self, tmp_path, tiny_citation_dataset, bundle_path
    ):
        from repro.hypergraph.sharding import ShardedBackend
        from repro.serving import ShardedSession

        dataset = tiny_citation_dataset
        session = ShardedSession(FrozenModel.load(bundle_path), n_shards=3)
        session.insert_nodes(_new_rows(dataset, 3))
        session.predict()
        reference = session.predict(output="logits")
        frozen = session.to_frozen()
        assert frozen.meta["shard_map"] is not None
        out = tmp_path / "sharded_bundle.npz"
        frozen.save(out)
        session.close()

        # A pool over the saved bundle auto-detects the shard map: the
        # writer comes back sharded without any explicit shards= argument.
        pool = SessionPool(FrozenModel.load(out), replicas=2)
        assert isinstance(pool.writer, ShardedSession)
        assert isinstance(pool.writer.backend, ShardedBackend)
        assert pool.stats()["writer"]["sharded"] is True
        assert np.array_equal(pool.writer.predict(output="logits"), reference)
        for replica in pool.replicas():
            assert np.array_equal(
                replica.session.predict(output="logits"), reference
            )

    def test_sharded_pool_matches_unsharded_pool_bit_for_bit(
        self, tiny_citation_dataset, bundle_path
    ):
        dataset = tiny_citation_dataset
        plain = SessionPool(FrozenModel.load(bundle_path), replicas=2)
        sharded = SessionPool(FrozenModel.load(bundle_path), replicas=2, shards=4)
        assert sharded.stats()["writer"]["sharded"] is True
        assert plain.stats()["writer"]["sharded"] is False

        rows = _new_rows(dataset, 4)
        plain.insert(rows)
        sharded.insert(rows)
        plain.delete([3, 5])
        sharded.delete([3, 5])
        plain.compact()
        sharded.compact()
        expected = plain.writer.predict(output="logits")
        assert np.array_equal(sharded.writer.predict(output="logits"), expected)
        for replica in sharded.replicas():
            assert np.array_equal(
                replica.session.predict(output="logits"), expected
            )

    def test_http_serving_with_shards(self, tiny_citation_dataset, bundle_path):
        dataset = tiny_citation_dataset
        direct = InferenceSession(FrozenModel.load(bundle_path))
        server_cls = TestServingServerHTTP()

        async def scenario(server, client):
            status, stats = await client.request("GET", "/stats")
            assert status == 200
            assert stats["pool"]["writer"]["sharded"] is True
            assert stats["config"]["shards"] == 2

            status, answer = await client.request(
                "POST", "/predict", {"nodes": [0, 3, 8], "output": "logits"}
            )
            assert status == 200
            assert np.array_equal(
                np.asarray(answer["result"]),
                direct.predict([0, 3, 8], output="logits"),
            )

            rows = _new_rows(dataset, 3).tolist()
            status, inserted = await client.request(
                "POST", "/insert", {"features": rows}
            )
            assert status == 200 and len(inserted["ids"]) == 3
            status, answer = await client.request(
                "POST", "/predict", {"nodes": inserted["ids"]}
            )
            assert status == 200 and len(answer["result"]) == 3

            status, deleted = await client.request(
                "POST", "/delete", {"nodes": [inserted["ids"][0]]}
            )
            assert status == 200 and deleted["tombstones"] == 1
            status, compacted = await client.request("POST", "/compact", {})
            assert status == 200
            assert compacted["n_nodes"] == dataset.n_nodes + 2

        server_cls._serve(bundle_path, scenario, shards=2)


# --------------------------------------------------------------------------- #
# CLI: repro serve
# --------------------------------------------------------------------------- #
class TestServeCLI:
    def test_serve_boots_and_answers(self, bundle_path):
        process = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "serve",
                "--bundle", str(bundle_path), "--port", "0", "--replicas", "1",
            ],
            stderr=subprocess.PIPE,
            text=True,
            env=dict(os.environ, PYTHONPATH="src"),
            cwd=str(Path(__file__).resolve().parents[1]),
        )
        try:
            line = process.stderr.readline()
            match = re.search(r"http://127\.0\.0\.1:(\d+)", line)
            assert match, f"no address announced: {line!r}"
            port = int(match.group(1))
            with socket.create_connection(("127.0.0.1", port), timeout=10) as conn:
                conn.sendall(
                    b"GET /healthz HTTP/1.1\r\nHost: t\r\n"
                    b"Connection: close\r\n\r\n"
                )
                response = b""
                while chunk := conn.recv(4096):
                    response += chunk
            assert response.startswith(b"HTTP/1.1 200")
            assert b'"status": "ok"' in response
        finally:
            process.terminate()
            try:
                process.wait(timeout=10)
            except subprocess.TimeoutExpired:
                process.kill()
                process.wait(timeout=10)
            process.stderr.close()
