"""Equivalence and regression tests for the topology-refresh engine.

Three guarantees are pinned here so the refresh-path speedups can never
silently change the reproduction's numbers:

1. the chunked k-NN (:func:`repro.hypergraph.knn.knn_indices`) selects exactly
   the same neighbours as the brute-force full-matrix path, for every block
   size, including ``block_size > n`` and tie-heavy inputs;
2. a cached propagation operator / Laplacian is ``allclose`` to a fresh
   rebuild, before and after weight and topology mutations;
3. training DHGCN / DHGNN with the operator cache enabled produces *identical*
   histories to training with it disabled, seed for seed.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import DHGCN, DHGCNConfig
from repro.hypergraph import (
    Hypergraph,
    OperatorCache,
    TopologyRefreshEngine,
    get_default_engine,
    hypergraph_laplacian,
    hypergraph_propagation_operator,
    knn_indices,
    knn_indices_bruteforce,
    reset_default_engine,
)
from repro.hypergraph.construction import knn_hyperedges
from repro.models import DHGNN
from repro.training import TrainConfig, Trainer


def _random_features(seed: int, n: int, d: int, *, tie_heavy: bool = False) -> np.ndarray:
    rng = np.random.default_rng(seed)
    if tie_heavy:
        # Integer grid coordinates force many exactly-equal distances, which
        # is where a naive argpartition-only top-k diverges from the
        # brute-force (distance, index) ordering.
        return rng.integers(0, 3, size=(n, d)).astype(np.float64)
    return rng.normal(size=(n, d))


# --------------------------------------------------------------------------- #
# 1. Chunked k-NN ≡ brute-force k-NN
# --------------------------------------------------------------------------- #
class TestChunkedKnnEquivalence:
    @given(
        seed=st.integers(0, 2**32 - 1),
        n=st.integers(2, 32),
        d=st.integers(1, 5),
        k_fraction=st.floats(0.0, 1.0),
        block_size=st.integers(1, 40),
        include_self=st.booleans(),
        tie_heavy=st.booleans(),
    )
    @settings(max_examples=120, deadline=None)
    def test_identical_neighbours(self, seed, n, d, k_fraction, block_size, include_self, tie_heavy):
        features = _random_features(seed, n, d, tie_heavy=tie_heavy)
        limit = n if include_self else n - 1
        k = 1 + int(k_fraction * (limit - 1))
        expected = knn_indices_bruteforce(features, k, include_self=include_self)
        actual = knn_indices(
            features, k, include_self=include_self, block_size=block_size
        )
        assert np.array_equal(expected, actual)

    def test_block_size_larger_than_n(self):
        features = _random_features(0, 10, 3)
        assert np.array_equal(
            knn_indices(features, 4, block_size=1000),
            knn_indices_bruteforce(features, 4),
        )

    def test_default_block_size_path(self):
        features = _random_features(1, 30, 4)
        assert np.array_equal(
            knn_indices(features, 5),
            knn_indices_bruteforce(features, 5),
        )

    def test_duplicate_points_tie_break_deterministic(self):
        # All points identical: every distance ties at 0, so neighbours must
        # come out in index order for both paths.
        features = np.ones((8, 3))
        for block_size in (1, 3, 8, 50):
            result = knn_indices(features, 3, block_size=block_size)
            assert np.array_equal(result, knn_indices_bruteforce(features, 3))
        # Row i's neighbours are the smallest indices other than i.
        assert np.array_equal(result[0], [1, 2, 3])
        assert np.array_equal(result[5], [0, 1, 2])

    @given(
        seed=st.integers(0, 2**32 - 1),
        n=st.integers(2, 24),
        k=st.integers(1, 4),
        block_size=st.integers(1, 30),
    )
    @settings(max_examples=60, deadline=None)
    def test_knn_hyperedges_identical(self, seed, n, k, block_size):
        features = _random_features(seed, n, 3, tie_heavy=(seed % 2 == 0))
        k = min(k, n - 1)
        chunked = knn_hyperedges(features, k, block_size=block_size)
        reference = knn_hyperedges(features, k, block_size=10**6)
        assert chunked.hyperedges == reference.hyperedges

    def test_invalid_block_size(self):
        features = _random_features(2, 6, 2)
        with pytest.raises(ValueError):
            knn_indices(features, 2, block_size=0)
        with pytest.raises(ValueError):
            knn_indices(features, 2, block_size=-3)


# --------------------------------------------------------------------------- #
# 2. Cached operators ≡ fresh rebuilds
# --------------------------------------------------------------------------- #
def _random_hypergraph(seed: int, n: int = 12) -> Hypergraph:
    rng = np.random.default_rng(seed)
    features = rng.normal(size=(n, 3))
    hypergraph = knn_hyperedges(features, 3)
    return hypergraph.with_weights(rng.uniform(0.5, 2.0, size=hypergraph.n_hyperedges))


class TestOperatorCacheEquivalence:
    @given(seed=st.integers(0, 2**32 - 1))
    @settings(max_examples=30, deadline=None)
    def test_cached_equals_fresh_through_mutations(self, seed):
        cache = OperatorCache()
        hypergraph = _random_hypergraph(seed)

        for variant in (
            hypergraph,
            # weight mutation
            hypergraph.with_weights(np.full(hypergraph.n_hyperedges, 1.7)),
            # topology mutations
            hypergraph.add_hyperedges([[0, 1, 2], [3, 4]]),
            hypergraph.remove_hyperedges([0, 1]),
        ):
            cached = cache.propagation_operator(variant)
            fresh = hypergraph_propagation_operator(variant)
            assert np.allclose(cached.toarray(), fresh.toarray())
            assert np.allclose(
                cache.laplacian(variant).toarray(),
                hypergraph_laplacian(variant).toarray(),
            )

    def test_hit_returns_same_object_and_counts(self):
        cache = OperatorCache()
        hypergraph = _random_hypergraph(7)
        first = cache.propagation_operator(hypergraph)
        second = cache.propagation_operator(hypergraph)
        assert second is first
        assert cache.stats()["hits"] == 1
        assert cache.stats()["misses"] == 1

        # An equal-but-distinct Hypergraph object hits through the fingerprint.
        clone = Hypergraph(hypergraph.n_nodes, hypergraph.hyperedges, hypergraph.weights)
        assert cache.propagation_operator(clone) is first

    def test_weight_change_is_a_different_key(self):
        cache = OperatorCache()
        hypergraph = _random_hypergraph(8)
        base = cache.propagation_operator(hypergraph)
        reweighted = cache.propagation_operator(
            hypergraph.with_weights(np.full(hypergraph.n_hyperedges, 2.0))
        )
        assert reweighted is not base
        assert cache.stats()["misses"] == 2

    def test_self_loop_flag_is_part_of_the_key(self):
        cache = OperatorCache()
        hypergraph = Hypergraph(5, [[0, 1], [1, 2]])  # nodes 3, 4 isolated
        with_loops = cache.propagation_operator(hypergraph, self_loop_isolated=True)
        without = cache.propagation_operator(hypergraph, self_loop_isolated=False)
        assert with_loops is not without
        assert with_loops.toarray()[3, 3] == 1.0
        assert without.toarray()[3, 3] == 0.0

    def test_discard_and_invalidate(self):
        cache = OperatorCache()
        a, b = _random_hypergraph(1), _random_hypergraph(2)
        cache.propagation_operator(a)
        cache.laplacian(a)
        cache.propagation_operator(b)
        assert len(cache) == 3
        assert cache.discard(a) == 2
        assert len(cache) == 1
        cache.invalidate()
        assert len(cache) == 0
        # Counters survive invalidation.
        assert cache.stats()["misses"] == 3

    def test_lru_eviction(self):
        cache = OperatorCache(max_entries=2)
        graphs = [_random_hypergraph(seed) for seed in range(3)]
        for hypergraph in graphs:
            cache.propagation_operator(hypergraph)
        assert len(cache) == 2
        assert cache.stats()["evictions"] == 1
        # The oldest entry was evicted; the newest two still hit.
        cache.propagation_operator(graphs[2])
        cache.propagation_operator(graphs[1])
        assert cache.stats()["hits"] == 2

    def test_disabled_cache_always_rebuilds(self):
        cache = OperatorCache(enabled=False)
        hypergraph = _random_hypergraph(3)
        first = cache.propagation_operator(hypergraph)
        second = cache.propagation_operator(hypergraph)
        assert first is not second
        assert np.allclose(first.toarray(), second.toarray())
        assert cache.stats()["hits"] == 0
        assert len(cache) == 0

    def test_fingerprint_semantics(self):
        hypergraph = _random_hypergraph(4)
        clone = Hypergraph(hypergraph.n_nodes, hypergraph.hyperedges, hypergraph.weights)
        assert hypergraph.fingerprint() == clone.fingerprint()
        assert hypergraph.fingerprint() != hypergraph.with_weights(
            np.full(hypergraph.n_hyperedges, 3.0)
        ).fingerprint()
        assert hypergraph.fingerprint() != hypergraph.add_hyperedges([[0, 1]]).fingerprint()

    def test_default_engine_is_shared_and_resettable(self):
        engine = get_default_engine()
        assert get_default_engine() is engine
        reset_default_engine()
        fresh = get_default_engine()
        assert fresh is not engine
        assert fresh is get_default_engine()


# --------------------------------------------------------------------------- #
# 3. Regression: the cache can never change model outputs
# --------------------------------------------------------------------------- #
def _train_history(model, dataset, epochs: int = 6):
    config = TrainConfig(epochs=epochs, lr=0.01, eval_every=1, patience=None)
    result = Trainer(model, dataset, config).train()
    return result


class TestCacheRegression:
    def test_dhgcn_identical_with_and_without_cache(self, tiny_object_dataset):
        reset_default_engine()
        histories = {}
        for use_cache in (True, False):
            config = DHGCNConfig(refresh_period=2, use_operator_cache=use_cache)
            model = DHGCN(
                tiny_object_dataset.n_features,
                tiny_object_dataset.n_classes,
                config,
                seed=0,
            )
            histories[use_cache] = _train_history(model, tiny_object_dataset)
        for key in ("train_loss", "val_accuracy", "test_accuracy"):
            assert histories[True].history[key] == histories[False].history[key], key
        assert histories[True].test_accuracy == histories[False].test_accuracy

    def test_dhgnn_identical_with_and_without_cache(self, tiny_object_dataset):
        reset_default_engine()
        histories = {}
        for use_cache in (True, False):
            model = DHGNN(
                tiny_object_dataset.n_features,
                tiny_object_dataset.n_classes,
                refresh_period=2,
                seed=0,
                use_operator_cache=use_cache,
            )
            histories[use_cache] = _train_history(model, tiny_object_dataset)
        for key in ("train_loss", "val_accuracy", "test_accuracy"):
            assert histories[True].history[key] == histories[False].history[key], key

    def test_dhgcn_identical_across_knn_block_sizes(self, tiny_object_dataset):
        histories = {}
        for block_size in (7, None):
            config = DHGCNConfig(refresh_period=2, knn_block_size=block_size)
            model = DHGCN(
                tiny_object_dataset.n_features,
                tiny_object_dataset.n_classes,
                config,
                seed=3,
            )
            histories[block_size] = _train_history(model, tiny_object_dataset)
        assert histories[7].history["train_loss"] == histories[None].history["train_loss"]

    def test_trainer_reports_cache_stats(self, tiny_object_dataset):
        reset_default_engine()
        model = DHGCN(
            tiny_object_dataset.n_features,
            tiny_object_dataset.n_classes,
            DHGCNConfig(refresh_period=2),
            seed=1,
        )
        result = _train_history(model, tiny_object_dataset)
        stats = result.extras["operator_cache"]
        assert stats["misses"] > 0
        assert result.extras["dynamic_hypergraphs_built"] > 0

    def test_repeated_seed_reuses_static_operator(self, tiny_object_dataset):
        """A sweep re-running the same dataset realisation hits the cache."""
        reset_default_engine()
        for _ in range(2):
            model = DHGCN(
                tiny_object_dataset.n_features,
                tiny_object_dataset.n_classes,
                DHGCNConfig(refresh_period=4),
                seed=5,
            )
            model.setup(tiny_object_dataset)
        assert get_default_engine().stats()["hits"] >= 1


# --------------------------------------------------------------------------- #
# Engine plumbing
# --------------------------------------------------------------------------- #
class TestRefreshProtocol:
    def test_identical_rebuild_hits_superseding_discards(self):
        """refresh_operator keeps an unchanged topology's entry, drops a changed one."""
        engine = TopologyRefreshEngine()
        hypergraph = _random_hypergraph(10)
        first = engine.refresh_operator(None, hypergraph)
        # Structurally identical rebuild (new object, same fingerprint): hit.
        clone = Hypergraph(hypergraph.n_nodes, hypergraph.hyperedges, hypergraph.weights)
        assert engine.refresh_operator(hypergraph, clone) is first
        assert engine.stats()["hits"] == 1
        # Structurally different refresh: the superseded entry is discarded.
        changed = hypergraph.add_hyperedges([[0, 1]])
        engine.refresh_operator(clone, changed)
        assert len(engine.cache) == 1
        assert engine.refresh_operator(None, changed) is not first

    def test_builder_hits_cache_on_identical_rebuild(self):
        """Steady-state refreshes that reproduce the topology must not rebuild."""
        from repro.core import DynamicHypergraphBuilder

        engine = TopologyRefreshEngine()
        builder = DynamicHypergraphBuilder(
            k_neighbors=3, use_cluster=False, use_edge_weighting=True, engine=engine
        )
        embedding = np.random.default_rng(0).normal(size=(15, 4))
        operators = [builder.build_operator(embedding) for _ in range(3)]
        assert operators[1] is operators[0] and operators[2] is operators[0]
        assert engine.stats()["hits"] == 2
        assert engine.stats()["misses"] == 1


class TestEngineConfiguration:
    def test_engine_block_size_validation(self):
        with pytest.raises(Exception):
            TopologyRefreshEngine(block_size=0)

    def test_private_engine_isolated_from_default(self):
        private = TopologyRefreshEngine()
        hypergraph = _random_hypergraph(6)
        private.propagation_operator(hypergraph)
        assert private.stats()["misses"] == 1
        assert len(private.cache) == 1
        reset_default_engine()
        assert get_default_engine().stats()["misses"] == 0
