"""Shared fixtures for the test-suite: tiny, fast dataset realisations."""

from __future__ import annotations

import os

# The lock-discipline sanitizer (repro.analysis.sanitize) reads this at
# import time, so it must be set before any ``repro`` module is imported:
# the whole suite then runs with guarded attributes asserting that their
# lock is held by the accessing thread.
os.environ.setdefault("REPRO_SANITIZE", "locks")

import numpy as np
import pytest

from repro.data.citation import make_citation_dataset
from repro.data.coauthorship import make_coauthorship
from repro.data.objects import make_objects_like


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture(scope="session")
def tiny_citation_dataset():
    """A ~120-node co-citation dataset that trains in well under a second."""
    return make_citation_dataset(
        "tiny-cocitation",
        n_nodes=120,
        n_classes=3,
        n_features=40,
        intra_class_degree=3.0,
        inter_class_degree=1.0,
        active_words=6,
        noise_words=2,
        confusion=0.4,
        train_per_class=8,
        val_fraction=0.2,
        seed=7,
    )


@pytest.fixture(scope="session")
def tiny_coauthorship_dataset():
    """A ~100-node co-authorship dataset (hypergraph-native structure)."""
    return make_coauthorship(
        "tiny-coauthorship",
        n_nodes=100,
        n_classes=4,
        n_features=50,
        n_hyperedges=150,
        min_authors=2,
        max_authors=5,
        community_purity=0.85,
        train_per_class=6,
        seed=11,
    )


@pytest.fixture(scope="session")
def tiny_object_dataset():
    """A ~120-node feature-only dataset (structure built from features)."""
    return make_objects_like(
        "tiny-objects",
        n_nodes=120,
        n_classes=5,
        view_dims=(12, 12),
        class_separation=1.0,
        within_class_std=0.9,
        static_knn=4,
        seed=13,
    )
