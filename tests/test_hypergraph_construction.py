"""Tests for k-NN / k-means search and the hypergraph construction toolkit."""

import numpy as np
import pytest

from repro.errors import HypergraphStructureError
from repro.graph import Graph
from repro.hypergraph import (
    Hypergraph,
    clique_expansion,
    epsilon_ball_hyperedges,
    hyperedge_homophily,
    hyperedges_from_graph_neighborhoods,
    hypergraph_statistics,
    kmeans,
    kmeans_hyperedges,
    knn_hyperedges,
    knn_indices,
    pairwise_distances,
    star_expansion,
    union_hypergraphs,
)
from repro.hypergraph.construction import corrupt_hyperedges, hyperedges_from_groups
from repro.hypergraph.metrics import node_degree_histogram


@pytest.fixture()
def clustered_features():
    rng = np.random.default_rng(0)
    return np.vstack(
        [
            rng.normal(loc=(0.0, 0.0), scale=0.2, size=(10, 2)),
            rng.normal(loc=(5.0, 5.0), scale=0.2, size=(10, 2)),
            rng.normal(loc=(-5.0, 5.0), scale=0.2, size=(10, 2)),
        ]
    )


class TestKnn:
    def test_pairwise_distances_symmetric_zero_diagonal(self, clustered_features):
        distances = pairwise_distances(clustered_features)
        assert np.allclose(distances, distances.T)
        assert np.allclose(np.diag(distances), 0.0)

    def test_knn_indices_shape_and_self_exclusion(self, clustered_features):
        neighbours = knn_indices(clustered_features, 3)
        assert neighbours.shape == (30, 3)
        for node in range(30):
            assert node not in neighbours[node]

    def test_knn_indices_include_self(self, clustered_features):
        neighbours = knn_indices(clustered_features, 3, include_self=True)
        assert np.all(neighbours[:, 0] == np.arange(30))

    def test_knn_stays_within_cluster(self, clustered_features):
        neighbours = knn_indices(clustered_features, 4)
        for node in range(30):
            assert np.all(neighbours[node] // 10 == node // 10)

    def test_knn_validation(self, clustered_features):
        with pytest.raises(ValueError):
            knn_indices(clustered_features, 0)
        with pytest.raises(ValueError):
            knn_indices(clustered_features, 30)
        with pytest.raises(Exception):
            knn_indices(np.zeros(5), 2)

    def test_knn_deterministic_tie_breaking(self):
        features = np.zeros((5, 2))  # all points identical -> ties everywhere
        neighbours = knn_indices(features, 2)
        again = knn_indices(features, 2)
        assert np.array_equal(neighbours, again)


class TestKMeans:
    def test_recovers_well_separated_clusters(self, clustered_features):
        result = kmeans(clustered_features, 3, seed=0)
        assert result.n_clusters == 3
        # Each true cluster maps to exactly one k-means cluster.
        for start in (0, 10, 20):
            assert len(set(result.labels[start : start + 10])) == 1
        assert len(set(result.labels[[0, 10, 20]])) == 3
        assert result.inertia < 10.0
        assert result.converged

    def test_deterministic_given_seed(self, clustered_features):
        a = kmeans(clustered_features, 3, seed=42)
        b = kmeans(clustered_features, 3, seed=42)
        assert np.array_equal(a.labels, b.labels)

    def test_single_cluster(self, clustered_features):
        result = kmeans(clustered_features, 1, seed=0)
        assert np.all(result.labels == 0)
        assert np.allclose(result.centroids[0], clustered_features.mean(axis=0))

    def test_n_clusters_equal_n_points(self):
        features = np.arange(8.0).reshape(4, 2)
        result = kmeans(features, 4, seed=0)
        assert len(set(result.labels.tolist())) == 4
        assert result.inertia == pytest.approx(0.0)

    def test_cluster_members_partition_nodes(self, clustered_features):
        result = kmeans(clustered_features, 3, seed=1)
        members = result.cluster_members()
        assert sum(len(member) for member in members) == 30
        assert np.array_equal(np.sort(np.concatenate(members)), np.arange(30))

    def test_validation(self, clustered_features):
        with pytest.raises(ValueError):
            kmeans(clustered_features, 0)
        with pytest.raises(ValueError):
            kmeans(clustered_features, 31)
        with pytest.raises(ValueError):
            kmeans(clustered_features, 2, max_iterations=0)


class TestConstruction:
    def test_knn_hyperedges_one_per_node(self, clustered_features):
        hypergraph = knn_hyperedges(clustered_features, 3)
        assert hypergraph.n_hyperedges == 30
        assert np.all(hypergraph.hyperedge_sizes() == 4)
        assert hypergraph.isolated_nodes().size == 0

    def test_kmeans_hyperedges_cover_all_nodes(self, clustered_features):
        hypergraph = kmeans_hyperedges(clustered_features, 3, seed=0)
        assert hypergraph.n_hyperedges == 3
        assert hypergraph.isolated_nodes().size == 0
        assert hypergraph.hyperedge_sizes().sum() == 30

    def test_kmeans_hyperedges_drop_small_clusters(self):
        features = np.vstack([np.zeros((9, 2)), np.full((1, 2), 100.0)])
        hypergraph = kmeans_hyperedges(features, 2, seed=0, min_size=2)
        assert hypergraph.n_hyperedges == 1

    def test_epsilon_ball_hyperedges(self, clustered_features):
        hypergraph = epsilon_ball_hyperedges(clustered_features, 1.0)
        assert hypergraph.n_hyperedges == 30
        # Every ball stays within its own cluster of ten points.
        assert np.all(hypergraph.hyperedge_sizes() <= 10)
        with pytest.raises(ValueError):
            epsilon_ball_hyperedges(clustered_features, 0.0)

    def test_neighborhood_hyperedges_from_graph(self):
        graph = Graph(5, [(0, 1), (1, 2), (3, 4)])
        hypergraph = hyperedges_from_graph_neighborhoods(graph)
        assert (0, 1, 2) in hypergraph.hyperedges
        assert hypergraph.n_nodes == 5

    def test_hyperedges_from_groups(self):
        hypergraph = hyperedges_from_groups(6, [[0, 1, 2], [3, 4]])
        assert hypergraph.n_hyperedges == 2

    def test_union_concatenates_and_preserves_weights(self):
        a = Hypergraph(5, [[0, 1]], [2.0])
        b = Hypergraph(5, [[2, 3, 4]], [3.0])
        union = union_hypergraphs(a, b)
        assert union.n_hyperedges == 2
        assert np.allclose(union.weights, [2.0, 3.0])

    def test_union_validation(self):
        with pytest.raises(HypergraphStructureError):
            union_hypergraphs()
        with pytest.raises(HypergraphStructureError):
            union_hypergraphs(Hypergraph(3, [[0, 1]]), Hypergraph(4, [[0, 1]]))

    def test_corrupt_hyperedges_fraction(self):
        hypergraph = Hypergraph(20, [list(range(i, i + 3)) for i in range(17)])
        corrupted = corrupt_hyperedges(hypergraph, 0.5, seed=0)
        assert corrupted.n_hyperedges == hypergraph.n_hyperedges
        changed = sum(
            1 for a, b in zip(hypergraph.hyperedges, corrupted.hyperedges) if a != b
        )
        assert 5 <= changed <= 12
        untouched = corrupt_hyperedges(hypergraph, 0.0, seed=0)
        assert untouched.hyperedges == hypergraph.hyperedges
        fully = corrupt_hyperedges(hypergraph, 1.0, seed=0)
        assert fully.n_hyperedges == hypergraph.n_hyperedges
        with pytest.raises(ValueError):
            corrupt_hyperedges(hypergraph, 1.5)


class TestExpansionAndMetrics:
    def test_clique_expansion(self):
        hypergraph = Hypergraph(4, [[0, 1, 2], [2, 3]])
        graph = clique_expansion(hypergraph)
        assert graph.n_edges == 4
        assert graph.has_edge(0, 2) and graph.has_edge(2, 3)
        assert not graph.has_edge(0, 3)

    def test_star_expansion(self):
        hypergraph = Hypergraph(4, [[0, 1, 2], [2, 3]])
        graph, n_original = star_expansion(hypergraph)
        assert n_original == 4
        assert graph.n_nodes == 6
        assert graph.n_edges == 5
        assert graph.has_edge(0, 4) and graph.has_edge(3, 5)

    def test_statistics(self):
        hypergraph = Hypergraph(5, [[0, 1, 2], [2, 3]])
        stats = hypergraph_statistics(hypergraph)
        assert stats["n_nodes"] == 5
        assert stats["n_hyperedges"] == 2
        assert stats["mean_hyperedge_size"] == pytest.approx(2.5)
        assert stats["isolated_node_fraction"] == pytest.approx(0.2)

    def test_homophily_pure_vs_mixed(self):
        labels = np.array([0, 0, 0, 1, 1, 1])
        pure = Hypergraph(6, [[0, 1, 2], [3, 4, 5]])
        mixed = Hypergraph(6, [[0, 3], [1, 4], [2, 5]])
        assert hyperedge_homophily(pure, labels) == pytest.approx(1.0)
        assert hyperedge_homophily(mixed, labels) == pytest.approx(0.5)
        assert hyperedge_homophily(Hypergraph.empty(6), labels) == 0.0

    def test_degree_histogram(self):
        hypergraph = Hypergraph(5, [[0, 1], [0, 2], [0, 3]])
        counts, edges = node_degree_histogram(hypergraph, n_bins=3)
        assert counts.sum() == 5
        with pytest.raises(ValueError):
            node_degree_histogram(hypergraph, n_bins=0)
