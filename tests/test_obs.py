"""Tests of the observability layer (``repro.obs``) and its serving wiring.

The load-bearing guarantees pinned here:

* the :class:`MetricsRegistry` is exact under concurrency (N threads times
  M increments land as exactly N*M), get-or-create by name (kind or label
  mismatch raises), and its snapshots are isolated — mutations after a
  snapshot never show through it;
* :class:`Histogram` files values with Prometheus ``le`` semantics (a value
  exactly on a bucket edge belongs to that edge's bucket) and reports
  interpolated percentiles; the ``+Inf`` overflow bucket reports the
  largest finite edge;
* ``render()`` emits valid Prometheus text exposition format 0.0.4 — the
  golden test pins the exact output for a known registry, and the live
  ``GET /metrics`` scrape is checked line-by-line against the grammar;
* traces propagate per-stage spans through the whole serving path: one
  traced request's structured log line carries individually-nonzero span
  timings that sum to within 10% of the end-to-end latency;
* the batcher deadline covers queue time (an admitted request that sat
  queued past its deadline is expired *without* being evaluated) and a
  request abandoned by an upstream ``wait_for`` is dropped at dispatch —
  the enqueue-timestamp bugfix;
* crash recovery on a fresh registry preserves ``recovered_mutations``
  while request counters start from zero (the chaos-marker test).

No pytest-asyncio here: each async scenario runs under ``asyncio.run``
inside a plain sync test, mirroring ``tests/test_serving_server.py``.
"""

import asyncio
import io
import json
import logging
import re
import threading
import urllib.request
from concurrent.futures import ThreadPoolExecutor
from contextlib import redirect_stdout

import numpy as np
import pytest

from repro import (
    DHGNN,
    FrozenModel,
    InferenceSession,
    TrainConfig,
    Trainer,
    reset_default_engine,
)
from repro.cli import build_parser, main as cli_main
from repro.errors import ConfigurationError
from repro.obs import (
    MetricsRegistry,
    Trace,
    activate,
    current_trace,
    current_traces,
    get_registry,
    record_span,
    span,
    use_registry,
)
from repro.serving.server import (
    MicroBatcher,
    ServerConfig,
    ServingServer,
    SessionPool,
)


@pytest.fixture(scope="module")
def bundle_path(tiny_citation_dataset, tmp_path_factory):
    """One trained DHGNN bundle shared by every test in this module."""
    reset_default_engine()
    dataset = tiny_citation_dataset
    model = DHGNN(dataset.n_features, dataset.n_classes, hidden_dim=8, seed=0)
    trainer = Trainer(
        model,
        dataset,
        TrainConfig(epochs=4, patience=None, neighbor_backend="incremental"),
    )
    trainer.train()
    path = tmp_path_factory.mktemp("obs") / "bundle.npz"
    trainer.export_frozen(str(path))
    return path


def _new_rows(dataset, count, seed=5):
    rng = np.random.default_rng(seed)
    base = dataset.features[rng.choice(dataset.n_nodes, count, replace=False)]
    return base + rng.normal(scale=0.05, size=base.shape)


# --------------------------------------------------------------------------- #
# Counter / Gauge
# --------------------------------------------------------------------------- #
class TestCounter:
    def test_inc_and_labels(self):
        registry = MetricsRegistry()
        counter = registry.counter("c_total", "help", labelnames=("op",))
        counter.inc(op="a")
        counter.inc(2.5, op="a")
        counter.inc(op="b")
        assert counter.value(op="a") == 3.5
        assert counter.value(op="b") == 1.0
        assert counter.value(op="never") == 0.0

    def test_negative_increment_rejected(self):
        counter = MetricsRegistry().counter("c_total")
        with pytest.raises(ConfigurationError, match="cannot decrease"):
            counter.inc(-1)

    def test_set_total_is_monotonic(self):
        counter = MetricsRegistry().counter("mirror_total")
        counter.set_total(5)
        counter.set_total(3)  # stale external read: never goes backwards
        assert counter.value() == 5.0
        counter.set_total(9)
        assert counter.value() == 9.0

    def test_concurrent_increments_are_exact(self):
        counter = MetricsRegistry().counter("contended_total")
        n_threads, n_incs = 8, 10_000

        def worker():
            for _ in range(n_incs):
                counter.inc()

        threads = [threading.Thread(target=worker) for _ in range(n_threads)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value() == float(n_threads * n_incs)

    def test_kind_and_label_mismatch_raise(self):
        registry = MetricsRegistry()
        registry.counter("shared", labelnames=("a",))
        assert registry.counter("shared", labelnames=("a",)) is registry.counter(
            "shared", labelnames=("a",)
        )
        with pytest.raises(ConfigurationError, match="already registered"):
            registry.gauge("shared")
        with pytest.raises(ConfigurationError, match="already registered"):
            registry.counter("shared", labelnames=("b",))


class TestGauge:
    def test_set_inc_and_callback(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("g")
        gauge.set(4.0)
        gauge.inc(-1.5)
        assert registry.snapshot()["gauges"]["g"]["values"][0]["value"] == 2.5
        pulled = registry.gauge("pulled")
        pulled.set_fn(lambda: 42.0)
        assert "pulled 42" in registry.render()


# --------------------------------------------------------------------------- #
# Histogram
# --------------------------------------------------------------------------- #
class TestHistogram:
    def test_value_on_edge_lands_in_that_bucket(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h", buckets=(1.0, 2.0, 5.0))
        hist.observe(1.0)   # le="1" (Prometheus le semantics: <=)
        hist.observe(1.001)  # le="2"
        hist.observe(5.0)   # le="5"
        text = registry.render()
        assert 'h_bucket{le="1"} 1' in text
        assert 'h_bucket{le="2"} 2' in text
        assert 'h_bucket{le="5"} 3' in text
        assert 'h_bucket{le="+Inf"} 3' in text
        assert "h_count 3" in text

    def test_overflow_bucket_and_percentile_clamp(self):
        hist = MetricsRegistry().histogram("h", buckets=(1.0, 2.0))
        hist.observe(100.0)  # beyond every finite edge
        assert hist.count() == 1
        assert hist.total() == 100.0
        # Percentiles are bucket summaries: the overflow bucket reports the
        # largest finite edge rather than inventing a value.
        assert hist.percentile(0.99) == 2.0

    def test_percentile_interpolates_within_buckets(self):
        hist = MetricsRegistry().histogram("h", buckets=(1.0, 2.0, 4.0))
        for value in (0.5, 1.5, 3.0, 3.5):
            hist.observe(value)
        # target = 0.5 * 4 = 2 observations: one in [0,1], the second found
        # in (1,2] at fraction (2-1)/1 = 1.0 of the bucket span.
        assert hist.percentile(0.5) == 2.0
        assert hist.percentile(0.0) == 0.0 or hist.percentile(0.0) <= 1.0

    def test_bad_buckets_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ConfigurationError, match="ascending"):
            registry.histogram("bad", buckets=(2.0, 1.0))
        with pytest.raises(ConfigurationError, match="ascending"):
            registry.histogram("empty", buckets=())

    def test_observe_many_matches_observe(self):
        # The batched hot-path entry point must be indistinguishable from N
        # individual observes — same buckets, count and sum.
        registry = MetricsRegistry()
        one = registry.histogram("one", buckets=(1.0, 2.0, 5.0))
        many = registry.histogram("many", buckets=(1.0, 2.0, 5.0))
        values = (0.5, 1.0, 1.5, 4.0, 9.0)
        for value in values:
            one.observe(value)
        many.observe_many(values)
        assert many.count() == one.count() == len(values)
        assert many.total() == one.total() == pytest.approx(sum(values))
        text = registry.render()
        for le, running in (("1", 2), ("2", 3), ("5", 4), ("+Inf", 5)):
            assert f'one_bucket{{le="{le}"}} {running}' in text
            assert f'many_bucket{{le="{le}"}} {running}' in text
        # Empty batches and disabled registries are no-ops.
        many.observe_many(())
        assert many.count() == len(values)
        off = MetricsRegistry(enabled=False).histogram("h")
        off.observe_many((1.0, 2.0))
        assert off.count() == 0


# --------------------------------------------------------------------------- #
# Registry
# --------------------------------------------------------------------------- #
class TestRegistry:
    def test_snapshot_is_isolated_from_later_mutations(self):
        registry = MetricsRegistry()
        counter = registry.counter("c_total")
        hist = registry.histogram("h", buckets=(1.0,))
        counter.inc()
        hist.observe(0.5)
        snap = registry.snapshot()
        counter.inc(10)
        hist.observe(0.5)
        assert snap["counters"]["c_total"]["values"][0]["value"] == 1.0
        assert snap["histograms"]["h"]["values"][0]["count"] == 1

    def test_reset_zeroes_but_keeps_definitions(self):
        registry = MetricsRegistry()
        counter = registry.counter("c_total")
        counter.inc(7)
        registry.reset()
        assert counter.value() == 0.0
        assert registry.counter("c_total") is counter

    def test_disabled_registry_is_a_no_op(self):
        registry = MetricsRegistry(enabled=False)
        counter = registry.counter("c_total")
        hist = registry.histogram("h")
        counter.inc(5)
        hist.observe(1.0)
        assert counter.value() == 0.0
        assert hist.count() == 0
        assert registry.render() == ""

    def test_collectors_run_on_scrape_and_can_be_removed(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("g")
        calls = []
        collector = lambda: (calls.append(1), gauge.set(len(calls)))[0]
        registry.add_collector(collector)
        registry.render()
        registry.snapshot()
        assert len(calls) == 2
        registry.remove_collector(collector)
        registry.render()
        assert len(calls) == 2

    def test_use_registry_swaps_and_restores_the_default(self):
        original = get_registry()
        fresh = MetricsRegistry()
        with use_registry(fresh):
            assert get_registry() is fresh
            get_registry().counter("inside_total").inc()
        assert get_registry() is original
        assert len(fresh) == 1

    def test_render_golden_exposition(self):
        registry = MetricsRegistry()
        registry.counter("req_total", "Total requests", labelnames=("route",)).inc(
            3, route="/predict"
        )
        registry.gauge("depth", "Queue depth").set(2)
        hist = registry.histogram("lat_seconds", "Latency", buckets=(0.1, 1.0))
        hist.observe(0.05)
        hist.observe(0.5)
        assert registry.render() == (
            "# HELP depth Queue depth\n"
            "# TYPE depth gauge\n"
            "depth 2\n"
            "# HELP lat_seconds Latency\n"
            "# TYPE lat_seconds histogram\n"
            'lat_seconds_bucket{le="0.1"} 1\n'
            'lat_seconds_bucket{le="1"} 2\n'
            'lat_seconds_bucket{le="+Inf"} 2\n'
            "lat_seconds_sum 0.55\n"
            "lat_seconds_count 2\n"
            "# HELP req_total Total requests\n"
            "# TYPE req_total counter\n"
            'req_total{route="/predict"} 3\n'
        )


# --------------------------------------------------------------------------- #
# Tracing
# --------------------------------------------------------------------------- #
class TestTracing:
    def test_span_is_inert_without_an_active_trace(self):
        trace = Trace.new()
        with span("idle"):
            pass
        assert trace.spans == {} and current_trace() is None

    def test_activate_records_and_restores(self):
        trace = Trace.new()
        with activate(trace):
            assert current_trace() is trace
            with span("work"):
                pass
            record_span("manual", 0.25)
        assert current_trace() is None
        assert trace.spans["work"] > 0.0
        assert trace.spans["manual"] == 0.25
        assert trace.total() == pytest.approx(sum(trace.spans.values()))

    def test_fan_out_bills_every_activated_trace(self):
        first, second = Trace.new(), Trace.new()
        with activate(first, second):
            assert current_traces() == (first, second)
            record_span("shared", 0.1)
        assert first.spans["shared"] == second.spans["shared"] == 0.1

    def test_repeated_spans_accumulate(self):
        trace = Trace.new()
        with activate(trace):
            record_span("step", 0.1)
            record_span("step", 0.2)
        assert trace.spans["step"] == pytest.approx(0.3)
        assert trace.spans_ms()["step"] == pytest.approx(300.0)

    def test_traces_survive_worker_threads_when_passed_explicitly(self):
        # run_in_executor does not copy contextvars — the serving path hands
        # traces to the worker and re-activates them there; pin that idiom.
        trace = Trace.new()

        def worker(traces):
            with activate(*traces):
                record_span("threaded", 0.05)

        with activate(trace):
            thread = threading.Thread(target=worker, args=(current_traces(),))
            thread.start()
            thread.join()
        assert trace.spans["threaded"] == 0.05


# --------------------------------------------------------------------------- #
# MicroBatcher deadline bugfix: queue time counts, cancelled requests drop
# --------------------------------------------------------------------------- #
class TestBatcherDeadlines:
    def _batcher(self, bundle_path, **kwargs):
        pool = SessionPool(FrozenModel.load(bundle_path), replicas=1)
        executor = ThreadPoolExecutor(max_workers=2)
        kwargs.setdefault("window_s", 0.0)
        kwargs.setdefault("max_batch_size", 64)
        kwargs.setdefault("max_queue_depth", 128)
        return pool, executor, MicroBatcher(pool, executor, **kwargs)

    def test_deadline_covers_queue_time(self, bundle_path):
        # The request is admitted, then sits queued past its deadline before
        # the dispatcher ever runs: it must expire un-evaluated instead of
        # restarting its clock at dispatch.
        pool, executor, batcher = self._batcher(bundle_path, timeout_s=0.05)

        async def scenario():
            submission = asyncio.ensure_future(batcher.submit({"nodes": [0]}))
            await asyncio.sleep(0.15)  # over the deadline, dispatcher not yet started
            batcher.start()
            with pytest.raises(asyncio.TimeoutError, match="queued"):
                await submission
            await batcher.stop()

        asyncio.run(scenario())
        assert batcher.stats()["expired"] == 1
        assert batcher.stats()["pending"] == 0
        executor.shutdown()

    def test_cancelled_request_is_dropped_at_dispatch(self, bundle_path):
        # An upstream wait_for cancels the submit coroutine; the future must
        # be marked cancelled so the dispatcher skips it, and its batch-mate
        # still gets a real answer.
        pool, executor, batcher = self._batcher(bundle_path, window_s=0.05)
        direct = InferenceSession(FrozenModel.load(bundle_path))

        async def scenario():
            batcher.start()
            abandoned = asyncio.ensure_future(batcher.submit({"nodes": [1]}))
            survivor = asyncio.ensure_future(
                batcher.submit({"nodes": [2], "output": "logits"})
            )
            await asyncio.sleep(0.005)  # both admitted, window still open
            abandoned.cancel()
            with pytest.raises(asyncio.CancelledError):
                await abandoned
            result = await survivor
            await batcher.stop()
            return result

        result = asyncio.run(scenario())
        assert np.array_equal(result, direct.predict([2], output="logits"))
        assert batcher.stats()["expired"] == 1  # the abandoned request
        assert batcher.stats()["pending"] == 0
        executor.shutdown()


# --------------------------------------------------------------------------- #
# HTTP plane: /healthz fields, /metrics exposition, /stats, trace logs
# --------------------------------------------------------------------------- #
async def _http_raw(reader, writer, method, path, payload=None):
    body = json.dumps(payload).encode() if payload is not None else b""
    writer.write(
        (
            f"{method} {path} HTTP/1.1\r\nHost: test\r\n"
            f"Content-Length: {len(body)}\r\n\r\n"
        ).encode()
        + body
    )
    await writer.drain()
    head = await reader.readuntil(b"\r\n\r\n")
    status = int(head.split(b" ", 2)[1])
    headers = {}
    for line in head.split(b"\r\n")[1:]:
        if b":" in line:
            name, _, value = line.partition(b":")
            headers[name.decode().lower()] = value.strip().decode()
    body = await reader.readexactly(int(headers["content-length"]))
    return status, body, headers


class _Client:
    """One keep-alive connection to a test server."""

    def __init__(self, port):
        self.port = port

    async def __aenter__(self):
        self.reader, self.writer = await asyncio.open_connection(
            "127.0.0.1", self.port
        )
        return self

    async def __aexit__(self, *exc):
        self.writer.close()

    async def request(self, method, path, payload=None):
        status, body, headers = await _http_raw(
            self.reader, self.writer, method, path, payload
        )
        if headers.get("content-type", "").startswith("application/json"):
            return status, json.loads(body), headers
        return status, body, headers


def _serve(bundle_path, scenario, **config_kwargs):
    """Run ``scenario(server)`` against a live server on a fresh registry."""
    config_kwargs.setdefault("port", 0)
    config_kwargs.setdefault("replicas", 1)
    config_kwargs.setdefault("batch_window_ms", 2.0)

    async def run():
        server = ServingServer(
            FrozenModel.load(bundle_path)
            if "checkpoint_path" not in config_kwargs
            else str(bundle_path),
            ServerConfig(**config_kwargs),
        )
        await server.start()
        try:
            return await scenario(server)
        finally:
            await server.shutdown()

    with use_registry(MetricsRegistry()):
        return asyncio.run(run())


#: One non-comment exposition line: name, optional {labels}, then a number.
_SAMPLE_LINE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*"
    r'(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})?'
    r" [-+]?(\d+(\.\d+)?([eE][-+]?\d+)?|\+?Inf|NaN)$"
)


class TestServerTelemetry:
    def test_healthz_carries_uptime_and_generation(self, bundle_path):
        async def scenario(server):
            async with _Client(server.port) as client:
                status, health, _ = await client.request("GET", "/healthz")
            return status, health

        status, health = _serve(bundle_path, scenario)
        assert status == 200
        assert health["status"] == "ok"
        assert health["uptime_s"] >= 0.0
        assert health["generation"] >= 1
        # The legacy keys keep working — /healthz and /stats telemetry are
        # served from the same code path.
        for key in ("n_alive", "queue_depth", "wal_depth", "recovered_mutations"):
            assert key in health

    def test_metrics_exposition_is_valid_and_complete(
        self, tiny_citation_dataset, bundle_path, tmp_path
    ):
        rows = _new_rows(tiny_citation_dataset, 1).tolist()

        async def scenario(server):
            async with _Client(server.port) as client:
                assert (await client.request("POST", "/predict", {"node": 3}))[0] == 200
                assert (
                    await client.request("POST", "/insert", {"features": rows})
                )[0] == 200
                status, body, headers = await client.request("GET", "/metrics")
            return status, body.decode("utf-8"), headers

        status, text, headers = _serve(
            bundle_path,
            scenario,
            wal_path=tmp_path / "mut.wal",
            checkpoint_path=tmp_path / "ckpt.npz",
        )
        assert status == 200
        assert headers["content-type"].startswith("text/plain; version=0.0.4")
        families = set()
        for line in text.rstrip("\n").split("\n"):
            if line.startswith("# TYPE "):
                families.add(line.split()[2])
                continue
            if line.startswith("#"):
                continue
            assert _SAMPLE_LINE.match(line), f"invalid exposition line: {line!r}"
        # Every metric family the issue promises, across all the layers.
        for family in (
            "repro_requests_total",
            "repro_request_seconds",
            "repro_batch_size",
            "repro_queue_wait_seconds",
            "repro_queue_depth",
            "repro_mutations_total",
            "repro_wal_append_seconds",
            "repro_wal_depth",
            "repro_checkpoint_seconds",
            "repro_checkpoint_age_seconds",
            "repro_uptime_seconds",
            "repro_generation",
            "repro_operator_cache_hits_total",
            "repro_neighbor_memo_hits_total",
            "repro_replica_acquire_total",
        ):
            assert family in families, f"missing family {family}"
        # Histogram invariant: _count equals the +Inf cumulative bucket.
        inf = re.search(
            r'repro_request_seconds_bucket\{route="/predict",le="\+Inf"\} (\d+)', text
        )
        count = re.search(
            r'repro_request_seconds_count\{route="/predict"\} (\d+)', text
        )
        assert inf and count and inf.group(1) == count.group(1) == "1"

    def test_stats_carries_telemetry_and_metrics_snapshot(self, bundle_path):
        async def scenario(server):
            async with _Client(server.port) as client:
                await client.request("POST", "/predict", {"node": 0})
                status, stats, _ = await client.request("GET", "/stats")
            return status, stats

        status, stats = _serve(bundle_path, scenario, trace_sample_rate=0.5)
        assert status == 200
        assert stats["telemetry"]["generation"] >= 1
        assert stats["metrics"]["counters"]["repro_requests_total"]["values"]
        assert stats["config"]["trace_sample_rate"] == 0.5
        assert "expired" in stats["batcher"]

    def test_traced_request_spans_sum_to_e2e_within_ten_percent(
        self, tiny_citation_dataset, bundle_path, tmp_path
    ):
        logger = logging.getLogger("repro.serving.trace")
        records: list[dict] = []

        class _Capture(logging.Handler):
            def emit(self, record):
                records.append(json.loads(record.getMessage()))

        handler = _Capture()
        logger.addHandler(handler)
        previous_level = logger.level
        logger.setLevel(logging.INFO)
        rows = _new_rows(tiny_citation_dataset, 2).tolist()

        async def one_predict(port, node):
            async with _Client(port) as client:
                return await client.request("POST", "/predict", {"node": node})

        async def scenario(server):
            # Concurrent predicts on separate connections so the batcher
            # coalesces them and the queue/assembly spans measure real waits.
            results = await asyncio.gather(
                *[one_predict(server.port, node) for node in range(4)]
            )
            assert all(status == 200 for status, _, _ in results)
            async with _Client(server.port) as client:
                status, _, _ = await client.request(
                    "POST", "/insert", {"features": rows}
                )
                assert status == 200

        try:
            _serve(
                bundle_path,
                scenario,
                trace_sample_rate=1.0,
                wal_path=tmp_path / "mut.wal",
                checkpoint_path=tmp_path / "ckpt.npz",
            )
        finally:
            logger.removeHandler(handler)
            logger.setLevel(previous_level)

        predicts = [r for r in records if r["route"] == "/predict"]
        inserts = [r for r in records if r["route"] == "/insert"]
        assert len(predicts) == 4 and len(inserts) == 1
        for record in records:
            assert record["event"] == "request"
            assert re.fullmatch(r"[0-9a-f]{16}", record["trace_id"])
            assert record["status"] == 200
            # Every span is a real measurement and together they explain the
            # end-to-end latency: within 10%, per the paper-trail contract.
            spans = record["spans_ms"]
            assert spans and all(value >= 0.0 for value in spans.values())
            coverage = sum(spans.values()) / record["duration_ms"]
            assert 0.9 <= coverage <= 1.05, (record["route"], spans, coverage)
        # The read path decomposes into queue/batch/acquire/dispatch...
        best = max(predicts, key=lambda r: min(r["spans_ms"].values()))
        for name in ("queue_wait", "batch_assembly", "replica_acquire", "dispatch"):
            assert best["spans_ms"].get(name, 0.0) > 0.0, (name, best["spans_ms"])
        assert best["batch_size"] >= 1
        # ...and the write path surfaces the durability and topology stages
        # (insert journals, re-queries k-NN, refreshes operators, forwards).
        insert_spans = inserts[0]["spans_ms"]
        for name in ("wal_append", "knn", "operator", "forward"):
            assert insert_spans.get(name, 0.0) > 0.0, (name, insert_spans)

    def test_profile_exposes_per_op_totals(self, bundle_path):
        async def scenario(server):
            assert server.profiler is not None
            async with _Client(server.port) as client:
                await client.request("POST", "/predict", {"node": 1})
                await client.request("POST", "/reassign", {})
                _, metrics_body, _ = await client.request("GET", "/metrics")
                _, stats, _ = await client.request("GET", "/stats")
            return metrics_body.decode("utf-8"), stats

        text, stats = _serve(bundle_path, scenario, profile=True)
        assert re.search(r'repro_op_seconds_total\{op="[a-z_]+"\} ', text)
        assert stats["config"]["profile"] is True
        assert any(row["total_seconds"] > 0 for row in stats["profile"])


# --------------------------------------------------------------------------- #
# Crash recovery vs. the registry (chaos marker)
# --------------------------------------------------------------------------- #
@pytest.mark.chaos
def test_recovery_preserves_recovered_mutations_on_a_fresh_registry(
    tiny_citation_dataset, bundle_path, tmp_path
):
    """A restart starts counters from zero but re-counts replayed mutations.

    The process-lifetime counters (requests, latency) die with the crashed
    process — a fresh registry must not resurrect them — while the replay
    of the WAL suffix shows up both in the ``repro_recovered_mutations``
    gauge and in ``repro_mutations_total`` (recovery goes through the same
    apply path as live writes).
    """
    with use_registry(MetricsRegistry()):
        pool = SessionPool(
            FrozenModel.load(bundle_path),
            replicas=1,
            checkpoint_path=tmp_path / "ckpt.npz",
            wal_path=tmp_path / "mut.wal",
        )
        n_cols = pool.writer.features.shape[1]
        pool.insert(_new_rows(tiny_citation_dataset, 2))  # checkpointed
        pool.delete([0, 5])  # tombstones: these two ride the WAL
        pool.update([7], np.zeros((1, n_cols)))
        assert pool.wal.depth == 2
        # "Crash": the live pool and its registry are simply abandoned.

    fresh = MetricsRegistry()
    with use_registry(fresh):
        server = ServingServer(
            str(bundle_path),
            ServerConfig(
                port=0,
                replicas=1,
                checkpoint_path=tmp_path / "ckpt.npz",
                wal_path=tmp_path / "mut.wal",
            ),
        )
        assert server.recovered == 2
        text = server.registry.render()
    assert "repro_recovered_mutations 2" in text
    assert 'repro_mutations_total{op="delete"} 1' in text
    assert 'repro_mutations_total{op="update"} 1' in text
    # No request ever hit the restarted process: the request counters hold
    # no samples at all instead of inheriting pre-crash values.
    assert "repro_requests_total" not in text
    assert server.recovered == 2


# --------------------------------------------------------------------------- #
# CLI: serve flags and the `repro stats` pretty-printer
# --------------------------------------------------------------------------- #
class TestStatsCLI:
    def test_serve_parser_accepts_telemetry_flags(self):
        args = build_parser().parse_args(
            [
                "serve", "--bundle", "b.npz", "--trace-sample-rate", "0.25",
                "--slow-ms", "50", "--profile", "--no-metrics",
            ]
        )
        assert args.trace_sample_rate == 0.25
        assert args.slow_ms == 50.0
        assert args.profile and args.no_metrics

    def test_stats_command_renders_a_live_server(self, bundle_path):
        def run_cli(argv):
            buffer = io.StringIO()
            with redirect_stdout(buffer):
                code = cli_main(argv)
            return code, buffer.getvalue()

        async def scenario(server):
            loop = asyncio.get_running_loop()
            url = f"http://127.0.0.1:{server.port}"

            def prime():
                request = urllib.request.Request(
                    url + "/predict",
                    data=b'{"node": 3}',
                    headers={"Content-Type": "application/json"},
                )
                urllib.request.urlopen(request).read()

            await loop.run_in_executor(None, prime)
            code, text = await loop.run_in_executor(None, run_cli, ["stats", url])
            raw_code, raw = await loop.run_in_executor(
                None, run_cli, ["stats", url + "/stats", "--json"]
            )
            return code, text, raw_code, raw

        code, text, raw_code, raw = _serve(bundle_path, scenario)
        assert code == 0
        assert "server (ok)" in text
        assert "batcher" in text and "latency (seconds)" in text
        assert "repro_request_seconds" in text
        assert raw_code == 0
        payload = json.loads(raw)
        assert "telemetry" in payload and "metrics" in payload
