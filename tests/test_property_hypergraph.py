"""Property-based tests (hypothesis) for hypergraph structures and construction."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hypergraph import (
    Hypergraph,
    clique_expansion,
    hypergraph_propagation_operator,
    kmeans,
    knn_hyperedges,
    knn_indices,
    union_hypergraphs,
)


@st.composite
def hypergraphs(draw, max_nodes=12, max_edges=8):
    n_nodes = draw(st.integers(min_value=2, max_value=max_nodes))
    n_edges = draw(st.integers(min_value=1, max_value=max_edges))
    hyperedges = []
    for _ in range(n_edges):
        size = draw(st.integers(min_value=1, max_value=n_nodes))
        members = draw(
            st.lists(
                st.integers(min_value=0, max_value=n_nodes - 1),
                min_size=size,
                max_size=size,
            )
        )
        hyperedges.append(members)
    return Hypergraph(n_nodes, hyperedges)


@st.composite
def feature_matrices(draw, max_nodes=12, max_dims=4):
    n = draw(st.integers(min_value=3, max_value=max_nodes))
    d = draw(st.integers(min_value=1, max_value=max_dims))
    values = draw(
        st.lists(
            st.floats(min_value=-10, max_value=10, allow_nan=False),
            min_size=n * d,
            max_size=n * d,
        )
    )
    return np.array(values, dtype=np.float64).reshape(n, d)


@given(hypergraphs())
@settings(max_examples=40, deadline=None)
def test_node_degree_equals_weighted_incidence_rows(hypergraph):
    incidence = hypergraph.incidence_matrix().toarray()
    expected = incidence @ hypergraph.weights
    assert np.allclose(hypergraph.node_degrees(), expected)


@given(hypergraphs())
@settings(max_examples=40, deadline=None)
def test_edge_degree_equals_hyperedge_size(hypergraph):
    assert np.allclose(hypergraph.edge_degrees(), hypergraph.hyperedge_sizes())


@given(hypergraphs())
@settings(max_examples=30, deadline=None)
def test_propagation_operator_symmetric_and_bounded(hypergraph):
    operator = hypergraph_propagation_operator(hypergraph).toarray()
    assert np.allclose(operator, operator.T, atol=1e-10)
    eigenvalues = np.linalg.eigvalsh(operator)
    assert eigenvalues.max() <= 1.0 + 1e-8
    assert eigenvalues.min() >= -1e-8


@given(hypergraphs())
@settings(max_examples=30, deadline=None)
def test_incidence_roundtrip_preserves_structure(hypergraph):
    rebuilt = Hypergraph.from_incidence(hypergraph.incidence_matrix(), hypergraph.weights)
    assert rebuilt.n_nodes == hypergraph.n_nodes
    assert sorted(rebuilt.hyperedges) == sorted(hypergraph.hyperedges)


@given(hypergraphs(), hypergraphs())
@settings(max_examples=30, deadline=None)
def test_union_hyperedge_count_is_additive(a, b):
    if a.n_nodes != b.n_nodes:
        b = Hypergraph(a.n_nodes, [[node % a.n_nodes for node in edge] for edge in b.hyperedges])
    union = union_hypergraphs(a, b)
    assert union.n_hyperedges == a.n_hyperedges + b.n_hyperedges


@given(hypergraphs())
@settings(max_examples=30, deadline=None)
def test_clique_expansion_edges_connect_cohyperedge_nodes(hypergraph):
    graph = clique_expansion(hypergraph)
    memberships = [set(edge) for edge in hypergraph.hyperedges]
    for u, v in graph.edges:
        assert any(u in members and v in members for members in memberships)


@given(feature_matrices(), st.integers(min_value=1, max_value=3))
@settings(max_examples=30, deadline=None)
def test_knn_indices_exclude_self_and_have_k_columns(features, k):
    k = min(k, features.shape[0] - 1)
    neighbours = knn_indices(features, k)
    assert neighbours.shape == (features.shape[0], k)
    for node in range(features.shape[0]):
        assert node not in neighbours[node]


@given(feature_matrices(), st.integers(min_value=1, max_value=3))
@settings(max_examples=30, deadline=None)
def test_knn_hyperedges_contain_their_center(features, k):
    k = min(k, features.shape[0] - 1)
    hypergraph = knn_hyperedges(features, k)
    for node, edge in enumerate(hypergraph.hyperedges):
        assert node in edge
        assert len(edge) <= k + 1


@given(feature_matrices(), st.integers(min_value=1, max_value=4))
@settings(max_examples=25, deadline=None)
def test_kmeans_labels_form_partition(features, n_clusters):
    n_clusters = min(n_clusters, features.shape[0])
    result = kmeans(features, n_clusters, seed=0)
    assert result.labels.shape == (features.shape[0],)
    assert set(result.labels.tolist()).issubset(set(range(n_clusters)))
    assert result.inertia >= 0.0
