"""Tests for optimisers, schedulers and early stopping."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.errors import ConfigurationError
from repro.nn import Linear
from repro.optim import SGD, Adam, AdamW, CosineAnnealingLR, EarlyStopping, MultiStepLR, StepLR


def quadratic_loss(parameter: Tensor) -> Tensor:
    return ((parameter - 3.0) ** 2).sum()


def run_steps(optimizer, parameter, steps=200):
    for _ in range(steps):
        optimizer.zero_grad()
        loss = quadratic_loss(parameter)
        loss.backward()
        optimizer.step()
    return float(quadratic_loss(parameter).data)


class TestOptimizers:
    def test_sgd_converges_on_quadratic(self):
        parameter = Tensor(np.zeros(3), requires_grad=True)
        assert run_steps(SGD([parameter], lr=0.1), parameter) < 1e-6
        assert np.allclose(parameter.data, 3.0, atol=1e-3)

    def test_sgd_with_momentum_converges(self):
        parameter = Tensor(np.zeros(3), requires_grad=True)
        assert run_steps(SGD([parameter], lr=0.05, momentum=0.9), parameter) < 1e-6

    def test_sgd_nesterov(self):
        parameter = Tensor(np.zeros(2), requires_grad=True)
        assert run_steps(SGD([parameter], lr=0.05, momentum=0.9, nesterov=True), parameter) < 1e-6

    def test_adam_converges_on_quadratic(self):
        parameter = Tensor(np.zeros(3), requires_grad=True)
        assert run_steps(Adam([parameter], lr=0.1), parameter, steps=400) < 1e-4

    def test_adamw_converges(self):
        parameter = Tensor(np.zeros(3), requires_grad=True)
        assert run_steps(AdamW([parameter], lr=0.1, weight_decay=0.001), parameter, steps=400) < 1e-2

    def test_weight_decay_shrinks_parameters(self):
        parameter = Tensor(np.full(4, 10.0), requires_grad=True)
        optimizer = SGD([parameter], lr=0.1, weight_decay=0.5)
        for _ in range(50):
            optimizer.zero_grad()
            (parameter * 0.0).sum().backward()  # zero task gradient
            optimizer.step()
        assert np.all(np.abs(parameter.data) < 1.0)

    def test_missing_gradient_treated_as_zero(self):
        parameter = Tensor(np.ones(2), requires_grad=True)
        optimizer = SGD([parameter], lr=0.1)
        optimizer.step()  # never called backward
        assert np.allclose(parameter.data, 1.0)

    def test_optimizer_updates_model_parameters_in_place(self):
        model = Linear(4, 3, seed=0)
        before = model.weight.data.copy()
        optimizer = Adam(model.parameters(), lr=0.01)
        out = model(Tensor(np.random.default_rng(0).normal(size=(5, 4))))
        out.sum().backward()
        optimizer.step()
        assert not np.allclose(before, model.weight.data)

    def test_configuration_errors(self):
        parameter = Tensor(np.zeros(2), requires_grad=True)
        with pytest.raises(ConfigurationError):
            SGD([], lr=0.1)
        with pytest.raises(ConfigurationError):
            SGD([parameter], lr=-1.0)
        with pytest.raises(ConfigurationError):
            SGD([parameter], lr=0.1, momentum=1.5)
        with pytest.raises(ConfigurationError):
            SGD([parameter], lr=0.1, nesterov=True)
        with pytest.raises(ConfigurationError):
            Adam([parameter], lr=0.1, betas=(1.5, 0.9))
        with pytest.raises(ConfigurationError):
            Adam([parameter], lr=0.1, eps=0.0)
        with pytest.raises(ConfigurationError):
            SGD([parameter], lr=0.1, weight_decay=-0.1)


class TestSchedulers:
    def _optimizer(self, lr=1.0):
        return SGD([Tensor(np.zeros(1), requires_grad=True)], lr=lr)

    def test_step_lr(self):
        optimizer = self._optimizer()
        scheduler = StepLR(optimizer, step_size=2, gamma=0.1)
        rates = [scheduler.step() for _ in range(4)]
        assert rates == pytest.approx([1.0, 0.1, 0.1, 0.01])
        assert optimizer.lr == pytest.approx(0.01)

    def test_multistep_lr(self):
        optimizer = self._optimizer()
        scheduler = MultiStepLR(optimizer, milestones=[2, 4], gamma=0.5)
        rates = [scheduler.step() for _ in range(5)]
        assert rates == pytest.approx([1.0, 0.5, 0.5, 0.25, 0.25])

    def test_cosine_lr_monotonically_decreases_to_eta_min(self):
        optimizer = self._optimizer()
        scheduler = CosineAnnealingLR(optimizer, t_max=10, eta_min=0.1)
        rates = [scheduler.step() for _ in range(10)]
        assert all(earlier >= later for earlier, later in zip(rates, rates[1:]))
        assert rates[-1] == pytest.approx(0.1)

    def test_scheduler_validation(self):
        optimizer = self._optimizer()
        with pytest.raises(ConfigurationError):
            StepLR(optimizer, step_size=0)
        with pytest.raises(ConfigurationError):
            MultiStepLR(optimizer, milestones=[])
        with pytest.raises(ConfigurationError):
            MultiStepLR(optimizer, milestones=[5, 2])
        with pytest.raises(ConfigurationError):
            CosineAnnealingLR(optimizer, t_max=0)


class TestEarlyStopping:
    def test_stops_after_patience_without_improvement(self):
        stopper = EarlyStopping(patience=3, mode="max")
        assert not stopper.update(0.5, 0)
        assert not stopper.update(0.4, 1)
        assert not stopper.update(0.4, 2)
        assert stopper.update(0.4, 3)
        assert stopper.stopped

    def test_improvement_resets_counter(self):
        stopper = EarlyStopping(patience=2, mode="max")
        stopper.update(0.5, 0)
        stopper.update(0.4, 1)
        stopper.update(0.6, 2)
        assert stopper.counter == 0
        assert stopper.best_epoch == 2

    def test_min_mode(self):
        stopper = EarlyStopping(patience=2, mode="min")
        stopper.update(1.0, 0)
        assert not stopper.update(0.5, 1)
        assert stopper.best_value == 0.5

    def test_best_state_is_copied(self):
        stopper = EarlyStopping(patience=2)
        state = {"weight": np.ones(2)}
        stopper.update(0.9, 0, state=state)
        state["weight"][0] = 42.0
        assert stopper.best_state["weight"][0] == 1.0

    def test_reset(self):
        stopper = EarlyStopping(patience=1)
        stopper.update(0.5, 0)
        stopper.update(0.1, 1)
        stopper.reset()
        assert not stopper.stopped and stopper.best_value is None

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            EarlyStopping(patience=0)
        with pytest.raises(ConfigurationError):
            EarlyStopping(mode="other")
        with pytest.raises(ConfigurationError):
            EarlyStopping(min_delta=-1.0)
