"""Tests for the DHGCN core: config, dynamic builder, layers and the full model."""

import numpy as np
import pytest

from repro.autograd import Tensor, cross_entropy
from repro.core import DHGCN, DHGCNConfig, DualChannelBlock, DynamicHypergraphBuilder, HypergraphConvolution
from repro.errors import ConfigurationError
from repro.hypergraph import hypergraph_propagation_operator


class TestConfig:
    def test_defaults_valid(self):
        config = DHGCNConfig()
        assert config.use_static and config.use_dynamic
        assert config.fusion == "gate"

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            DHGCNConfig(hidden_dim=0)
        with pytest.raises(ConfigurationError):
            DHGCNConfig(n_layers=0)
        with pytest.raises(ConfigurationError):
            DHGCNConfig(dropout=1.0)
        with pytest.raises(ConfigurationError):
            DHGCNConfig(k_neighbors=0)
        with pytest.raises(ConfigurationError):
            DHGCNConfig(n_clusters=0)
        with pytest.raises(ConfigurationError):
            DHGCNConfig(refresh_period=0)
        with pytest.raises(ConfigurationError):
            DHGCNConfig(weight_temperature=0.0)
        with pytest.raises(ConfigurationError):
            DHGCNConfig(fusion="other")
        with pytest.raises(ConfigurationError):
            DHGCNConfig(use_static=False, use_dynamic=False)
        with pytest.raises(ConfigurationError):
            DHGCNConfig(use_knn_hyperedges=False, use_cluster_hyperedges=False)

    def test_ablations(self):
        config = DHGCNConfig()
        assert not config.ablate("static").use_static
        assert not config.ablate("dynamic").use_dynamic
        assert not config.ablate("knn").use_knn_hyperedges
        assert not config.ablate("cluster").use_cluster_hyperedges
        assert not config.ablate("weighting").use_edge_weighting
        with pytest.raises(ConfigurationError):
            config.ablate("nonsense")

    def test_to_dict_roundtrip(self):
        config = DHGCNConfig(hidden_dim=16, k_neighbors=3)
        data = config.to_dict()
        assert data["hidden_dim"] == 16
        assert DHGCNConfig(**data) == config


class TestDynamicBuilder:
    @pytest.fixture()
    def embedding(self):
        rng = np.random.default_rng(0)
        return np.vstack([rng.normal(0, 0.3, (15, 4)), rng.normal(4, 0.3, (15, 4))])

    def test_builds_knn_and_cluster_hyperedges(self, embedding):
        builder = DynamicHypergraphBuilder(k_neighbors=3, n_clusters=2, seed=0)
        hypergraph = builder.build_hypergraph(embedding)
        assert hypergraph.n_nodes == 30
        assert hypergraph.n_hyperedges == 30 + 2
        assert builder.build_count == 1

    def test_knn_only_and_cluster_only(self, embedding):
        knn_only = DynamicHypergraphBuilder(k_neighbors=3, n_clusters=2, use_cluster=False, seed=0)
        assert knn_only.build_hypergraph(embedding).n_hyperedges == 30
        cluster_only = DynamicHypergraphBuilder(k_neighbors=3, n_clusters=2, use_knn=False, seed=0)
        assert cluster_only.build_hypergraph(embedding).n_hyperedges == 2

    def test_edge_weighting_produces_nonuniform_weights(self, embedding):
        weighted = DynamicHypergraphBuilder(k_neighbors=3, n_clusters=2, seed=0)
        hypergraph = weighted.build_hypergraph(embedding)
        assert np.ptp(hypergraph.weights) > 0.0
        unweighted = DynamicHypergraphBuilder(
            k_neighbors=3, n_clusters=2, use_edge_weighting=False, seed=0
        )
        assert np.allclose(unweighted.build_hypergraph(embedding).weights, 1.0)

    def test_operator_shape_and_symmetry(self, embedding):
        builder = DynamicHypergraphBuilder(k_neighbors=2, n_clusters=3, seed=0)
        operator = builder.build_operator(embedding).toarray()
        assert operator.shape == (30, 30)
        assert np.allclose(operator, operator.T)

    def test_handles_small_inputs_gracefully(self):
        builder = DynamicHypergraphBuilder(k_neighbors=10, n_clusters=10, seed=0)
        hypergraph = builder.build_hypergraph(np.random.default_rng(0).normal(size=(4, 3)))
        assert hypergraph.n_nodes == 4

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            DynamicHypergraphBuilder(use_knn=False, use_cluster=False)
        with pytest.raises(ConfigurationError):
            DynamicHypergraphBuilder(k_neighbors=0)
        with pytest.raises(ConfigurationError):
            DynamicHypergraphBuilder(n_clusters=0)
        with pytest.raises(ConfigurationError):
            DynamicHypergraphBuilder(weight_temperature=0.0)
        with pytest.raises(ConfigurationError):
            DynamicHypergraphBuilder().build_hypergraph(np.zeros(5))


class TestLayers:
    def test_hypergraph_convolution_forward(self, tiny_citation_dataset):
        dataset = tiny_citation_dataset
        operator = hypergraph_propagation_operator(dataset.hypergraph)
        layer = HypergraphConvolution(dataset.n_features, 8, seed=0)
        out = layer(Tensor(dataset.features), operator)
        assert out.shape == (dataset.n_nodes, 8)
        with pytest.raises(ConfigurationError):
            layer(Tensor(dataset.features), None)

    def test_dual_channel_gate_starts_balanced(self):
        block = DualChannelBlock(4, 3, fusion="gate", seed=0)
        assert block.gate_value() == pytest.approx(0.5)

    def test_dual_channel_modes(self, tiny_citation_dataset):
        dataset = tiny_citation_dataset
        static_op = hypergraph_propagation_operator(dataset.hypergraph)
        dynamic_op = np.eye(dataset.n_nodes)
        x = Tensor(dataset.features)
        for fusion in ("gate", "sum", "static_only", "dynamic_only"):
            block = DualChannelBlock(dataset.n_features, 5, fusion=fusion, seed=0)
            out = block(x, static_op, dynamic_op)
            assert out.shape == (dataset.n_nodes, 5)
        with pytest.raises(ConfigurationError):
            DualChannelBlock(4, 3, fusion="bad")

    def test_gate_values_reported_per_mode(self):
        assert DualChannelBlock(4, 3, fusion="sum").gate_value() == 0.5
        assert DualChannelBlock(4, 3, fusion="static_only").gate_value() == 1.0
        assert DualChannelBlock(4, 3, fusion="dynamic_only").gate_value() == 0.0

    def test_gate_receives_gradient(self, tiny_citation_dataset):
        dataset = tiny_citation_dataset
        static_op = hypergraph_propagation_operator(dataset.hypergraph)
        block = DualChannelBlock(dataset.n_features, dataset.n_classes, fusion="gate", seed=0)
        out = block(Tensor(dataset.features), static_op, np.eye(dataset.n_nodes))
        cross_entropy(out, dataset.labels, dataset.split.train).backward()
        assert block.gate.grad is not None
        assert abs(float(block.gate.grad[0])) > 0.0


class TestDHGCNModel:
    def test_forward_shape_and_finiteness(self, tiny_citation_dataset):
        dataset = tiny_citation_dataset
        model = DHGCN(dataset.n_features, dataset.n_classes, DHGCNConfig(hidden_dim=8), seed=0)
        model.setup(dataset)
        logits = model(Tensor(dataset.features))
        assert logits.shape == (dataset.n_nodes, dataset.n_classes)
        assert np.all(np.isfinite(logits.data))

    def test_gradients_reach_every_parameter(self, tiny_citation_dataset):
        dataset = tiny_citation_dataset
        model = DHGCN(dataset.n_features, dataset.n_classes, DHGCNConfig(hidden_dim=8), seed=0)
        model.setup(dataset)
        loss = cross_entropy(model(Tensor(dataset.features)), dataset.labels, dataset.split.train)
        loss.backward()
        for name, parameter in model.named_parameters():
            assert parameter.grad is not None, f"no gradient for {name}"

    @pytest.mark.parametrize("component", ["static", "dynamic", "knn", "cluster", "weighting"])
    def test_ablated_variants_run(self, component, tiny_citation_dataset):
        dataset = tiny_citation_dataset
        config = DHGCNConfig(hidden_dim=8).ablate(component)
        model = DHGCN(dataset.n_features, dataset.n_classes, config, seed=0).setup(dataset)
        logits = model(Tensor(dataset.features))
        assert logits.shape == (dataset.n_nodes, dataset.n_classes)

    def test_static_only_builds_no_dynamic_hypergraphs(self, tiny_citation_dataset):
        dataset = tiny_citation_dataset
        config = DHGCNConfig(hidden_dim=8).ablate("dynamic")
        model = DHGCN(dataset.n_features, dataset.n_classes, config, seed=0).setup(dataset)
        model(Tensor(dataset.features))
        assert model.dynamic_hypergraphs_built() == 0
        assert model.builder is None

    def test_refresh_period_controls_rebuilds(self, tiny_citation_dataset):
        dataset = tiny_citation_dataset
        config = DHGCNConfig(hidden_dim=8, n_layers=2, refresh_period=3)
        model = DHGCN(dataset.n_features, dataset.n_classes, config, seed=0).setup(dataset)
        for epoch in range(6):
            model.on_epoch(epoch)
            model(Tensor(dataset.features))
        # Rebuilds happen at epochs 0 and 3 for each of the two blocks.
        assert model.dynamic_hypergraphs_built() == 2 * 2

    def test_refresh_now_forces_rebuild(self, tiny_citation_dataset):
        dataset = tiny_citation_dataset
        model = DHGCN(dataset.n_features, dataset.n_classes, DHGCNConfig(hidden_dim=8), seed=0)
        model.setup(dataset)
        model(Tensor(dataset.features))
        built = model.dynamic_hypergraphs_built()
        model(Tensor(dataset.features))
        assert model.dynamic_hypergraphs_built() == built
        model.refresh_now()
        model(Tensor(dataset.features))
        assert model.dynamic_hypergraphs_built() > built

    def test_gate_values_have_one_entry_per_block(self, tiny_citation_dataset):
        dataset = tiny_citation_dataset
        config = DHGCNConfig(hidden_dim=8, n_layers=3)
        model = DHGCN(dataset.n_features, dataset.n_classes, config, seed=0).setup(dataset)
        assert len(model.gate_values()) == 3
        assert all(0.0 <= gate <= 1.0 for gate in model.gate_values())

    def test_setup_on_feature_only_dataset(self, tiny_object_dataset):
        dataset = tiny_object_dataset
        model = DHGCN(dataset.n_features, dataset.n_classes, DHGCNConfig(hidden_dim=8), seed=0)
        model.setup(dataset)
        assert model(Tensor(dataset.features)).shape == (dataset.n_nodes, dataset.n_classes)

    def test_deterministic_given_seed(self, tiny_citation_dataset):
        dataset = tiny_citation_dataset
        outputs = []
        for _ in range(2):
            model = DHGCN(dataset.n_features, dataset.n_classes, DHGCNConfig(hidden_dim=8), seed=9)
            model.setup(dataset)
            model.eval()
            outputs.append(model(Tensor(dataset.features)).data)
        assert np.allclose(outputs[0], outputs[1])
