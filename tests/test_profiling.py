"""Tests of the op-level profiler (repro.utils.profiling)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import HGNN, TrainConfig, Trainer
from repro.autograd import Tensor
from repro.utils.profiling import OpProfiler, record_block
from repro.utils import profiling


def _small_graph_pass(profiler: OpProfiler | None = None):
    rng = np.random.default_rng(0)
    x = Tensor(rng.normal(size=(6, 4)), requires_grad=True)
    w = Tensor(rng.normal(size=(4, 3)), requires_grad=True)
    if profiler is None:
        loss = ((x @ w).relu()).sum()
        loss.backward()
    else:
        with profiler.activate():
            loss = ((x @ w).relu()).sum()
            loss.backward()
    return x, w


class TestOpProfiler:
    def test_records_forward_and_backward(self):
        profiler = OpProfiler()
        _small_graph_pass(profiler)
        names = set(profiler.records)
        assert {"MatMul", "ReLU", "Sum"} <= names
        matmul = profiler.records["MatMul"]
        assert matmul.calls == 1
        assert matmul.backward_calls == 1
        assert matmul.forward_seconds >= 0.0
        # 6x3 float64 output = 144 bytes; backward returns both grads.
        assert matmul.forward_bytes == 6 * 3 * 8
        assert matmul.backward_bytes == (6 * 4 + 4 * 3) * 8

    def test_inactive_by_default(self):
        profiler = OpProfiler()
        _small_graph_pass(None)
        assert profiler.records == {}
        assert profiling.ACTIVE is None

    def test_activation_is_scoped_and_restored(self):
        profiler = OpProfiler()
        assert profiling.ACTIVE is None
        with profiler.activate():
            assert profiling.ACTIVE is profiler
        assert profiling.ACTIVE is None

    def test_activation_restored_on_exception(self):
        profiler = OpProfiler()
        with pytest.raises(RuntimeError):
            with profiler.activate():
                raise RuntimeError("boom")
        assert profiling.ACTIVE is None

    def test_table_sorted_by_total_time(self):
        profiler = OpProfiler()
        _small_graph_pass(profiler)
        table = profiler.table()
        totals = [row["total_seconds"] for row in table]
        assert totals == sorted(totals, reverse=True)
        assert all("op" in row and "calls" in row for row in table)

    def test_summary_totals_consistent(self):
        profiler = OpProfiler()
        _small_graph_pass(profiler)
        summary = profiler.summary(wall_seconds=1.0)
        assert summary["op_seconds"] == pytest.approx(
            sum(row["total_seconds"] for row in summary["ops"])
        )
        assert summary["coverage"] == pytest.approx(summary["op_seconds"])
        assert summary["op_bytes"] == sum(row["total_bytes"] for row in summary["ops"])

    def test_reset(self):
        profiler = OpProfiler()
        _small_graph_pass(profiler)
        profiler.reset()
        assert profiler.records == {}


class TestRecordBlock:
    def test_noop_without_active_profiler(self):
        with record_block("anything"):
            pass  # must not raise nor record anywhere

    def test_attributes_block_to_active_profiler(self):
        profiler = OpProfiler()
        with profiler.activate():
            with record_block("custom.block"):
                _ = sum(range(100))
        assert "custom.block" in profiler.records
        record = profiler.records["custom.block"]
        assert record.calls == 1
        assert record.forward_seconds >= 0.0


class TestTrainerProfiling:
    def test_trainer_profile_extras(self, tiny_citation_dataset):
        model = HGNN(
            tiny_citation_dataset.n_features, tiny_citation_dataset.n_classes, seed=0
        )
        config = TrainConfig(epochs=5, patience=None)
        result = Trainer(model, tiny_citation_dataset, config, profile=True).train()
        profile = result.extras["profile"]
        assert profile["wall_seconds"] > 0.0
        assert profile["op_seconds"] > 0.0
        names = {row["op"] for row in profile["ops"]}
        # Forward ops, the optimizer step and the fused dropout mask all show.
        assert "MatMul" in names
        assert "SparseMatMul" in names
        assert "Optimizer.step" in names
        assert "Dropout.mask" in names
        # Per-op totals should explain the large majority of the epoch time.
        assert 0.5 <= profile["coverage"] <= 1.2

    def test_trainer_without_profile_has_no_extras_entry(self, tiny_citation_dataset):
        model = HGNN(
            tiny_citation_dataset.n_features, tiny_citation_dataset.n_classes, seed=0
        )
        config = TrainConfig(epochs=2, patience=None)
        result = Trainer(model, tiny_citation_dataset, config).train()
        assert "profile" not in result.extras
        assert profiling.ACTIVE is None
