"""Gradient correctness of activations, losses and the sparse matmul op."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.autograd import Tensor, check_gradients
from repro.autograd.ops_activation import elu, leaky_relu, log_softmax, relu, sigmoid, softmax, tanh
from repro.autograd.ops_loss import cross_entropy, mse_loss, nll_loss
from repro.autograd.ops_sparse import spmm
from repro.errors import ShapeError


def _t(shape, seed):
    return Tensor(np.random.default_rng(seed).normal(size=shape), requires_grad=True)


class TestActivationsForward:
    def test_relu(self):
        assert np.allclose(relu(Tensor([-1.0, 2.0])).data, [0.0, 2.0])

    def test_leaky_relu(self):
        assert np.allclose(leaky_relu(Tensor([-10.0, 2.0]), 0.1).data, [-1.0, 2.0])

    def test_elu(self):
        out = elu(Tensor([-1.0, 2.0]), alpha=1.0).data
        assert out[1] == pytest.approx(2.0)
        assert out[0] == pytest.approx(np.exp(-1.0) - 1.0)

    def test_sigmoid_tanh(self):
        assert sigmoid(Tensor([0.0])).data[0] == pytest.approx(0.5)
        assert tanh(Tensor([0.0])).data[0] == pytest.approx(0.0)

    def test_softmax_rows_sum_to_one(self):
        out = softmax(_t((4, 6), 0), axis=-1).data
        assert np.allclose(out.sum(axis=1), 1.0)
        assert np.all(out >= 0.0)

    def test_softmax_stability_with_large_values(self):
        out = softmax(Tensor([[1000.0, 1000.0]]), axis=-1).data
        assert np.allclose(out, [[0.5, 0.5]])

    def test_log_softmax_matches_log_of_softmax(self):
        x = _t((3, 5), 1)
        assert np.allclose(log_softmax(x).data, np.log(softmax(x).data))


class TestActivationGradients:
    @pytest.mark.parametrize(
        "function",
        [relu, sigmoid, tanh, lambda x: leaky_relu(x, 0.05), lambda x: elu(x, 1.2)],
    )
    def test_elementwise(self, function):
        x = _t((4, 3), 2)
        weights = Tensor(np.random.default_rng(3).normal(size=(4, 3)))
        check_gradients(lambda x: (function(x) * weights).sum(), [x])

    def test_softmax_gradient(self):
        x = _t((3, 4), 4)
        weights = Tensor(np.random.default_rng(5).normal(size=(3, 4)))
        check_gradients(lambda x: (softmax(x, axis=-1) * weights).sum(), [x])

    def test_log_softmax_gradient(self):
        x = _t((3, 4), 6)
        weights = Tensor(np.random.default_rng(7).normal(size=(3, 4)))
        check_gradients(lambda x: (log_softmax(x, axis=-1) * weights).sum(), [x])


class TestLosses:
    def test_cross_entropy_value_uniform(self):
        logits = Tensor(np.zeros((4, 3)))
        loss = cross_entropy(logits, np.array([0, 1, 2, 0]))
        assert loss.data == pytest.approx(np.log(3.0))

    def test_cross_entropy_gradient(self):
        logits = _t((6, 4), 8)
        targets = np.array([0, 1, 2, 3, 0, 1])
        check_gradients(lambda logits: cross_entropy(logits, targets), [logits])

    def test_cross_entropy_with_index_subset(self):
        logits = _t((6, 4), 9)
        targets = np.array([0, 1, 2, 3, 0, 1])
        index = np.array([1, 3, 5])
        check_gradients(lambda logits: cross_entropy(logits, targets, index), [logits])

    def test_masked_rows_receive_zero_gradient(self):
        logits = Tensor(np.random.default_rng(0).normal(size=(5, 3)), requires_grad=True)
        cross_entropy(logits, np.array([0, 1, 2, 0, 1]), np.array([0, 2])).backward()
        assert np.allclose(logits.grad[[1, 3, 4]], 0.0)
        assert not np.allclose(logits.grad[[0, 2]], 0.0)

    def test_nll_loss_empty_index_raises(self):
        with pytest.raises(ValueError):
            nll_loss(Tensor(np.zeros((3, 2))), np.array([0, 1, 0]), np.array([], dtype=int))

    def test_nll_loss_requires_2d(self):
        with pytest.raises(ShapeError):
            nll_loss(Tensor(np.zeros(3)), np.array([0, 1, 0]))

    def test_mse_loss_value_and_gradient(self):
        prediction = _t((4, 2), 10)
        target = np.random.default_rng(11).normal(size=(4, 2))
        loss = mse_loss(prediction, target)
        assert loss.data == pytest.approx(np.mean((prediction.data - target) ** 2))
        check_gradients(lambda prediction: mse_loss(prediction, target), [prediction])

    def test_mse_shape_mismatch(self):
        with pytest.raises(ShapeError):
            mse_loss(Tensor(np.zeros((2, 2))), np.zeros((3, 2)))


class TestSparseMatMul:
    def test_forward_matches_dense(self):
        operator = sp.random(6, 5, density=0.5, random_state=0, format="csr")
        x = Tensor(np.random.default_rng(1).normal(size=(5, 3)))
        assert np.allclose(spmm(operator, x).data, operator.toarray() @ x.data)

    def test_gradient_through_dense_operand(self):
        operator = sp.random(7, 4, density=0.6, random_state=2, format="csr")
        x = _t((4, 3), 12)
        check_gradients(lambda x: (spmm(operator, x) ** 2).sum(), [x])

    def test_accepts_dense_numpy_operator(self):
        operator = np.random.default_rng(3).normal(size=(3, 4))
        x = _t((4, 2), 13)
        assert np.allclose(spmm(operator, x).data, operator @ x.data)

    def test_shape_errors(self):
        operator = sp.eye(3, format="csr")
        with pytest.raises(ShapeError):
            spmm(operator, Tensor(np.zeros((4, 2))))
        with pytest.raises(ShapeError):
            spmm(operator, Tensor(np.zeros(3)))
