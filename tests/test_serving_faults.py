"""Fault-tolerance tests: WAL, crash recovery, deadlines, degraded mode.

The load-bearing guarantees pinned here:

* :class:`WriteAheadLog` round-trips records exactly, tolerates (and
  truncates) a torn tail left by a crash, and refuses — loudly — a complete
  record whose checksum does not match;
* :class:`SessionPool` journals every mutation *before* applying it,
  truncates the journal whenever a checkpoint lands (carrying the WAL
  high-water sequence number for replay dedup), and
  :meth:`SessionPool.recover` replays the journal suffix into a state whose
  predictions are **bit-identical** to a pool that never crashed;
* the crash matrix: for *every* fault point registered in
  ``repro.serving.faults``, a subprocess running a randomized mutation
  sequence is killed (``os._exit``, the ``kill -9`` analogue) at that
  point, and recovery from checkpoint + WAL reconstructs the exact prefix
  state — then finishes the sequence to the exact final state;
* failure containment in the HTTP front-end: deadline-expired requests
  answer 504 within ~2x the budget, a writer failure quarantines the pool
  (writes 503 + ``Retry-After`` while reads keep serving, ``/healthz``
  reports ``degraded``), an unexpected batch failure resolves every
  batch-mate with a structured 500 (no leaked futures, connection
  survives), and shutdown fails still-queued futures instead of leaking
  them.

Chaos-marked tests (``pytest -m chaos``) spawn subprocesses; the
``REPRO_CHAOS_QUICK=1`` environment switch shrinks the crash matrix to one
representative point per module for fast CI passes.
"""

import asyncio
import json
import os
import subprocess
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro import DHGNN, FrozenModel, TrainConfig, Trainer, reset_default_engine
from repro.errors import ConfigurationError
from repro.serving import (
    CRASH_EXIT_CODE,
    FaultInjected,
    SessionPool,
    ServingServer,
    ServerConfig,
    WALCorruptionError,
    WALError,
    WriteAheadLog,
    WriterQuarantinedError,
    clear_faults,
    fault_registry,
)
from repro.serving.server import MicroBatcher, ServerDrainingError

REPO_ROOT = Path(__file__).resolve().parents[1]
SRC_DIR = REPO_ROOT / "src"


@pytest.fixture(autouse=True)
def _clean_fault_registry():
    """Never leak an armed fault into a neighbouring test."""
    clear_faults()
    yield
    clear_faults()


@pytest.fixture(scope="module")
def bundle_path(tiny_citation_dataset, tmp_path_factory):
    """One trained DHGNN bundle shared by every test in this module."""
    reset_default_engine()
    dataset = tiny_citation_dataset
    model = DHGNN(dataset.n_features, dataset.n_classes, hidden_dim=8, seed=0)
    trainer = Trainer(
        model,
        dataset,
        TrainConfig(epochs=4, patience=None, neighbor_backend="incremental"),
    )
    trainer.train()
    path = tmp_path_factory.mktemp("serving_faults") / "bundle.npz"
    trainer.export_frozen(str(path))
    return path


# --------------------------------------------------------------------------- #
# WriteAheadLog
# --------------------------------------------------------------------------- #
class TestWriteAheadLog:
    def test_roundtrip(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "mut.wal")
        assert wal.depth == 0 and wal.last_seq == 0
        wal.append("insert", {"features": [[0.1, -2.5e-17], [3.0, 4.0]]}, 1)
        wal.append("delete", {"nodes": [7, 9]}, 2)
        records = wal.read_records()
        assert [record.seq for record in records] == [1, 2]
        assert records[0].op == "insert"
        # Float64 values survive the JSON round-trip bit-exactly.
        assert records[0].payload["features"][0][1] == -2.5e-17
        assert wal.depth == 2 and wal.last_seq == 2

    def test_reopen_appends_after_existing_records(self, tmp_path):
        path = tmp_path / "mut.wal"
        first = WriteAheadLog(path)
        first.append("compact", {}, 1)
        first.close()
        second = WriteAheadLog(path)
        assert second.depth == 1 and second.last_seq == 1
        second.append("reassign", {}, 2)
        assert [r.seq for r in second.read_records()] == [1, 2]

    def test_torn_tail_is_tolerated_and_truncated(self, tmp_path):
        path = tmp_path / "mut.wal"
        wal = WriteAheadLog(path)
        wal.append("insert", {"features": [[1.0]]}, 1)
        wal.append("delete", {"nodes": [3]}, 2)
        wal.close()
        whole = path.read_bytes()
        # Chop the last record mid-frame: the crash-mid-write artefact.
        path.write_bytes(whole[:-5])
        reopened = WriteAheadLog(path)
        assert reopened.depth == 1 and reopened.last_seq == 1
        # The torn bytes were truncated away, so appends resume cleanly.
        reopened.append("compact", {}, 2)
        assert [r.seq for r in reopened.read_records()] == [1, 2]

    def test_checksum_corruption_raises(self, tmp_path):
        path = tmp_path / "mut.wal"
        wal = WriteAheadLog(path)
        wal.append("insert", {"features": [[1.0, 2.0, 3.0]]}, 1)
        wal.close()
        blob = bytearray(path.read_bytes())
        blob[-2] ^= 0xFF  # flip a bit inside a *complete* record
        path.write_bytes(bytes(blob))
        with pytest.raises(WALCorruptionError, match="checksum"):
            WriteAheadLog(path)

    def test_non_wal_file_is_rejected(self, tmp_path):
        path = tmp_path / "not.wal"
        path.write_bytes(b"definitely not a journal")
        with pytest.raises(WALError, match="bad header"):
            WriteAheadLog(path)

    def test_truncate_resets_the_journal(self, tmp_path):
        path = tmp_path / "mut.wal"
        wal = WriteAheadLog(path)
        wal.append("compact", {}, 1)
        wal.truncate()
        assert wal.depth == 0
        assert wal.read_records() == []
        wal.append("reassign", {}, 2)
        assert [r.seq for r in wal.read_records()] == [2]


# --------------------------------------------------------------------------- #
# Fault registry
# --------------------------------------------------------------------------- #
class TestFaultRegistry:
    def test_points_enumerate_every_declared_boundary(self):
        points = fault_registry().points()
        for expected in (
            "wal.before_fsync",
            "wal.before_truncate",
            "store.before_replace",
            "session.mid_mutation",
            "pool.mid_apply",
            "pool.after_checkpoint",
            "batcher.before_dispatch",
        ):
            assert expected in points

    def test_unknown_point_is_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown fault point"):
            fault_registry().set("no.such.point", "raise")

    def test_bad_actions_are_rejected(self):
        registry = fault_registry()
        with pytest.raises(ConfigurationError, match="unknown fault action"):
            registry.set("pool.mid_apply", "explode")
        with pytest.raises(ConfigurationError, match="seconds"):
            registry.set("pool.mid_apply", "delay:soon")
        with pytest.raises(ConfigurationError, match="trigger count"):
            registry.set("pool.mid_apply", "raise@zeroth")
        with pytest.raises(ConfigurationError, match="point=action"):
            registry.configure("pool.mid_apply")

    def test_raise_action_fires(self):
        registry = fault_registry()
        registry.set("pool.mid_apply", "raise")
        with pytest.raises(FaultInjected, match="pool.mid_apply"):
            registry.fire("pool.mid_apply")

    def test_nth_hit_arming(self):
        registry = fault_registry()
        registry.set("pool.mid_apply", "raise@3")
        registry.fire("pool.mid_apply")
        registry.fire("pool.mid_apply")
        with pytest.raises(FaultInjected):
            registry.fire("pool.mid_apply")
        assert registry.hits("pool.mid_apply") == 3

    def test_delay_action_sleeps(self):
        registry = fault_registry()
        registry.set("wal.before_fsync", "delay:0.05")
        started = time.perf_counter()
        registry.fire("wal.before_fsync")
        assert time.perf_counter() - started >= 0.04

    def test_unarmed_points_are_noops(self):
        registry = fault_registry()
        registry.fire("pool.mid_apply")  # nothing armed: free
        registry.set("wal.before_fsync", "raise")
        registry.fire("pool.mid_apply")  # a *different* armed point: still free
        registry.clear("wal.before_fsync")
        registry.fire("wal.before_fsync")


# --------------------------------------------------------------------------- #
# SessionPool + WAL (in-process)
# --------------------------------------------------------------------------- #
def _new_rows(n_rows, n_cols, seed):
    return np.random.default_rng(seed).normal(size=(n_rows, n_cols))


def _pool(bundle_path, tmp_path, *, wal=True, checkpoint=True, **kwargs):
    kwargs.setdefault("replicas", 1)
    return SessionPool(
        FrozenModel.load(bundle_path),
        checkpoint_path=tmp_path / "ckpt.npz" if checkpoint else None,
        wal_path=tmp_path / "mut.wal" if wal else None,
        **kwargs,
    )


class TestPoolWAL:
    def test_checkpoint_truncates_and_carries_wal_seq(self, bundle_path, tmp_path):
        pool = _pool(bundle_path, tmp_path)
        n_cols = pool.writer.features.shape[1]
        pool.insert(_new_rows(2, n_cols, seed=1))
        # Tombstone-free write: the checkpoint landed and subsumed the record.
        assert pool.wal.depth == 0
        assert pool.last_seq == 1
        assert FrozenModel.load(tmp_path / "ckpt.npz").meta["wal_seq"] == 1

    def test_tombstoned_generations_accumulate_in_the_wal(self, bundle_path, tmp_path):
        pool = _pool(bundle_path, tmp_path)
        n_cols = pool.writer.features.shape[1]
        pool.insert(_new_rows(2, n_cols, seed=1))
        pool.delete([0, 5])       # tombstones: checkpoint skipped
        pool.update([7], _new_rows(1, n_cols, seed=2))
        assert pool.wal.depth == 2
        assert pool.checkpoints == 2  # init + the tombstone-free insert

    def test_recovery_is_bit_identical(self, bundle_path, tmp_path):
        pool = _pool(bundle_path, tmp_path)
        n_cols = pool.writer.features.shape[1]
        pool.insert(_new_rows(3, n_cols, seed=1))
        pool.delete([2, 9])
        pool.update([4], _new_rows(1, n_cols, seed=2))
        reference = pool.writer.predict(output="logits").copy()
        # "Crash": abandon the live pool, restart from the checkpoint (as
        # ServingServer does) and replay the WAL suffix on top of it.
        recovered = SessionPool(
            FrozenModel.load(tmp_path / "ckpt.npz"),
            replicas=1,
            checkpoint_path=tmp_path / "ckpt.npz",
            wal_path=tmp_path / "mut.wal",
        )
        assert recovered.recover() == 2  # the delete + the update
        assert recovered.last_seq == pool.last_seq
        assert np.array_equal(
            recovered.writer.predict(output="logits"), reference
        )

    def test_replay_dedups_already_checkpointed_records(self, bundle_path, tmp_path):
        pool = _pool(bundle_path, tmp_path, checkpoint=False)
        n_cols = pool.writer.features.shape[1]
        pool.insert(_new_rows(2, n_cols, seed=3))
        pool.reassign()
        reference = pool.writer.predict(output="logits").copy()
        # A checkpoint that absorbed both records, but whose truncation never
        # ran (the crash-between-checkpoint-and-truncate window).
        snapshot = pool.writer.to_frozen()
        snapshot.meta["wal_seq"] = pool.last_seq
        recovered = SessionPool(
            snapshot, replicas=1, wal_path=tmp_path / "mut.wal"
        )
        assert recovered.recover() == 0  # every record deduped by seq
        assert recovered.last_seq == pool.last_seq
        assert np.array_equal(
            recovered.writer.predict(output="logits"), reference
        )

    def test_replay_skips_records_the_live_run_rejected(self, bundle_path, tmp_path):
        pool = _pool(bundle_path, tmp_path, checkpoint=False)
        n_cols = pool.writer.features.shape[1]
        with pytest.raises(ConfigurationError):
            pool.delete([10 ** 6])  # journalled, then rejected pre-mutation
        pool.insert(_new_rows(2, n_cols, seed=4))
        reference = pool.writer.predict(output="logits").copy()
        recovered = SessionPool(
            FrozenModel.load(bundle_path), replicas=1,
            wal_path=tmp_path / "mut.wal",
        )
        assert recovered.recover() == 1  # the insert; the bad delete skipped
        assert recovered.last_seq == pool.last_seq
        assert np.array_equal(
            recovered.writer.predict(output="logits"), reference
        )

    def test_writes_before_recover_are_refused(self, bundle_path, tmp_path):
        pool = _pool(bundle_path, tmp_path, checkpoint=False)
        n_cols = pool.writer.features.shape[1]
        pool.insert(_new_rows(1, n_cols, seed=5))
        stale = SessionPool(
            FrozenModel.load(bundle_path), replicas=1,
            wal_path=tmp_path / "mut.wal",
        )
        with pytest.raises(ConfigurationError, match="recover"):
            stale.insert(_new_rows(1, n_cols, seed=6))

    def test_midapply_failure_quarantines_but_reads_survive(
        self, bundle_path, tmp_path
    ):
        pool = _pool(bundle_path, tmp_path)
        n_cols = pool.writer.features.shape[1]
        baseline = asyncio.run(self._read_logits(pool))
        fault_registry().set("pool.mid_apply", "raise")
        with pytest.raises(FaultInjected):
            pool.insert(_new_rows(1, n_cols, seed=7))
        assert pool.read_only and pool.status == "degraded"
        assert "FaultInjected" in pool.failure
        with pytest.raises(WriterQuarantinedError):
            pool.insert(_new_rows(1, n_cols, seed=8))
        # Readers still serve the last *published* generation, bit-identically.
        clear_faults()
        assert np.array_equal(asyncio.run(self._read_logits(pool)), baseline)

    def test_validation_errors_do_not_quarantine(self, bundle_path, tmp_path):
        pool = _pool(bundle_path, tmp_path)
        with pytest.raises(ConfigurationError):
            pool.delete([10 ** 6])
        with pytest.raises(ConfigurationError):
            pool.insert([[1.0, 2.0], [3.0]])  # ragged: rejected pre-journal
        assert not pool.read_only and pool.status == "ok"

    @staticmethod
    async def _read_logits(pool):
        async with pool.acquire() as session:
            return session.predict(output="logits").copy()


# --------------------------------------------------------------------------- #
# Crash matrix: every fault point, kill + recover + bit-identity
# --------------------------------------------------------------------------- #
N_CHAOS_OPS = 8
CHAOS_SEED = 2024


def _apply_scripted_op(pool, k):
    """Op ``k`` of the chaos script, derived only from ``k`` + pool state.

    Seeding per op index makes the sequence prefix-independent: a process
    that recovered ops ``0..j-1`` regenerates op ``j`` identically, because
    the recovered state is bit-identical to the pre-crash state.
    """
    rng = np.random.default_rng(CHAOS_SEED + k)
    writer = pool.writer
    n_cols = writer.features.shape[1]
    choice = int(rng.integers(0, 6))
    if choice in (0, 1):
        pool.insert(rng.normal(size=(int(rng.integers(1, 3)), n_cols)))
    elif choice == 2:
        alive = writer.alive_ids
        nodes = rng.choice(alive, size=min(2, alive.size), replace=False)
        pool.update(sorted(int(n) for n in nodes), rng.normal(size=(nodes.size, n_cols)))
    elif choice == 3 and writer.n_alive > 10:
        alive = writer.alive_ids
        pool.delete([int(rng.choice(alive))])
    elif choice == 4:
        pool.compact()
    else:
        pool.reassign()


_CHAOS_CHILD = """
import os, sys
from pathlib import Path
import numpy as np
sys.path.insert(0, os.environ["CHAOS_SRC"])
sys.path.insert(0, os.environ["CHAOS_TESTS"])
from repro.serving import FrozenModel, SessionPool
from test_serving_faults import N_CHAOS_OPS, _apply_scripted_op

ckpt = Path(os.environ["CHAOS_CKPT"])
bundle = os.environ["CHAOS_BUNDLE"]
frozen = FrozenModel.load(ckpt if ckpt.exists() else bundle)
pool = SessionPool(frozen, replicas=1, checkpoint_path=ckpt,
                   wal_path=os.environ["CHAOS_WAL"])
pool.recover()
for k in range(pool.last_seq, N_CHAOS_OPS):
    _apply_scripted_op(pool, k)
print("COMPLETED", pool.last_seq)
"""


def _chaos_points():
    points = sorted(fault_registry().points())
    points.remove("batcher.before_dispatch")  # read path: no WAL involvement
    if os.environ.get("REPRO_CHAOS_QUICK"):
        # One representative point per module keeps the quick matrix honest.
        keep: dict[str, str] = {}
        for point in points:
            keep.setdefault(point.split(".", 1)[0], point)
        points = sorted(keep.values())
    return points


@pytest.fixture(scope="module")
def chaos_reference(bundle_path):
    """Logits after every prefix of the chaos script, from an uncrashed run."""
    pool = SessionPool(FrozenModel.load(bundle_path), replicas=1)
    prefixes = [pool.writer.predict(output="logits").copy()]
    for k in range(N_CHAOS_OPS):
        _apply_scripted_op(pool, k)
        prefixes.append(pool.writer.predict(output="logits").copy())
    return prefixes


@pytest.mark.chaos
@pytest.mark.parametrize("point", _chaos_points())
def test_crash_recovery_matrix(point, bundle_path, chaos_reference, tmp_path):
    """Kill the writer process at ``point``; recovery must be bit-identical.

    The subprocess runs the scripted mutation sequence with a ``crash``
    action armed at the point's third crossing (``os._exit`` — no flushes,
    no finally blocks, exactly ``kill -9``).  Whatever the crash left on
    disk, restarting from checkpoint + WAL must reproduce the exact logits
    of the uncrashed run at the recovered prefix — and finishing the
    sequence must reach the exact final state.
    """
    ckpt = tmp_path / "ckpt.npz"
    wal = tmp_path / "mut.wal"
    env = {
        key: value for key, value in os.environ.items() if key != "REPRO_FAULTS"
    }
    env.update(
        CHAOS_SRC=str(SRC_DIR),
        CHAOS_TESTS=str(REPO_ROOT / "tests"),
        CHAOS_BUNDLE=str(bundle_path),
        CHAOS_CKPT=str(ckpt),
        CHAOS_WAL=str(wal),
        REPRO_FAULTS=f"{point}=crash@3",
    )
    run = subprocess.run(
        [sys.executable, "-c", _CHAOS_CHILD],
        env=env, capture_output=True, text=True, timeout=180,
    )
    assert run.returncode in (0, CRASH_EXIT_CODE), run.stderr
    if run.returncode == 0:
        # The armed point never reached its third crossing in this script —
        # the run is then simply an uncrashed baseline and must match it.
        assert "COMPLETED" in run.stdout

    # Recover exactly as a restarted server would: prefer the checkpoint,
    # replay the WAL suffix on top of it.
    frozen = FrozenModel.load(ckpt if ckpt.exists() else bundle_path)
    pool = SessionPool(
        frozen, replicas=1, checkpoint_path=ckpt, wal_path=wal
    )
    pool.recover()
    assert not pool.read_only, pool.failure
    assert 0 <= pool.last_seq <= N_CHAOS_OPS
    assert np.array_equal(
        pool.writer.predict(output="logits"), chaos_reference[pool.last_seq]
    ), f"recovered state diverges after crash at {point!r}"

    # Finish the sequence: the continuation must land on the exact final
    # state of the run that never crashed.
    for k in range(pool.last_seq, N_CHAOS_OPS):
        _apply_scripted_op(pool, k)
    assert np.array_equal(
        pool.writer.predict(output="logits"), chaos_reference[N_CHAOS_OPS]
    ), f"continued state diverges after crash at {point!r}"


# --------------------------------------------------------------------------- #
# Targeted chaos: crash between compact() and WAL truncate
# --------------------------------------------------------------------------- #
_COMPACT_CHILD = """
import os, sys
from pathlib import Path
import numpy as np
sys.path.insert(0, os.environ["CHAOS_SRC"])
from repro.serving import FrozenModel, SessionPool

shards = int(os.environ["CHAOS_SHARDS"])
ckpt = Path(os.environ["CHAOS_CKPT"])
frozen = FrozenModel.load(ckpt if ckpt.exists() else os.environ["CHAOS_BUNDLE"])
kwargs = {"shards": shards} if shards else {}
pool = SessionPool(frozen, replicas=1, checkpoint_path=ckpt,
                   wal_path=os.environ["CHAOS_WAL"], **kwargs)
pool.recover()

def rows(seed, n):
    return np.random.default_rng(seed).normal(
        size=(n, pool.writer.features.shape[1])
    )

# Seq-guarded, per-op-seeded script: a restarted process resumes exactly
# where the WAL says the crashed one stopped.
if pool.last_seq < 1:
    pool.delete([3, 11])          # pre-compact node ids ride the WAL
if pool.last_seq < 2:
    pool.update([7], rows(71, 1))  # pre-compact id again
if pool.last_seq < 3:
    pool.compact()                 # rebalance + checkpoint: the crash window
if pool.last_seq < 4:
    pool.insert(rows(73, 2))
print("COMPLETED", pool.last_seq)
"""


@pytest.mark.chaos
@pytest.mark.parametrize("shards", [None, 4], ids=["unsharded", "sharded"])
@pytest.mark.parametrize("point", ["pool.before_checkpoint", "pool.after_checkpoint"])
def test_crash_between_compact_and_wal_truncate(point, shards, bundle_path, tmp_path):
    """``compact()`` remaps ids (and rebalances shards), checkpoints, then
    truncates the WAL.  A crash inside that window leaves records that
    reference *pre-compact* node ids in the journal; a restart must replay
    them bit-identically — from the pre-compact checkpoint when the new one
    never landed (``before_checkpoint``), or dedup them all by sequence
    number when it did (``after_checkpoint``).  Sharded and unsharded pools
    must both recover to the same exact state.

    Checkpoints are skipped while tombstones exist, so the compact's
    checkpoint is exactly the second crossing (after the one at pool init):
    ``crash@2`` is deterministic, unlike the randomized matrix above.
    """

    def rows(seed, n, n_cols):
        return np.random.default_rng(seed).normal(size=(n, n_cols))

    # Uncrashed, unsharded reference for every state the recovery must hit.
    reference = SessionPool(FrozenModel.load(bundle_path), replicas=1)
    n_cols = reference.writer.features.shape[1]
    reference.delete([3, 11])
    reference.update([7], rows(71, 1, n_cols))
    reference.compact()
    after_compact = reference.writer.predict(output="logits").copy()
    reference.insert(rows(73, 2, n_cols))
    final = reference.writer.predict(output="logits").copy()

    ckpt, wal = tmp_path / "ckpt.npz", tmp_path / "mut.wal"
    env = {key: value for key, value in os.environ.items() if key != "REPRO_FAULTS"}
    env.update(
        CHAOS_SRC=str(SRC_DIR),
        CHAOS_BUNDLE=str(bundle_path),
        CHAOS_CKPT=str(ckpt),
        CHAOS_WAL=str(wal),
        CHAOS_SHARDS=str(shards or 0),
        REPRO_FAULTS=f"{point}=crash@2",
    )
    run = subprocess.run(
        [sys.executable, "-c", _COMPACT_CHILD],
        env=env, capture_output=True, text=True, timeout=180,
    )
    assert run.returncode == CRASH_EXIT_CODE, run.stderr
    assert ckpt.exists()  # at least the init checkpoint always lands

    recovered = SessionPool(
        FrozenModel.load(ckpt), replicas=1, checkpoint_path=ckpt, wal_path=wal
    )
    # The shard map rides the checkpoint meta: no shards= argument here, yet
    # the recovered writer is sharded exactly when the crashed one was.
    assert recovered.stats()["writer"]["sharded"] is (shards is not None)
    if point == "pool.before_checkpoint":
        # The compact's checkpoint never hit disk: the journal replays the
        # delete, the update and the compact on the pre-compact snapshot.
        assert recovered.recover() == 3
    else:
        # The checkpoint landed but the truncate didn't: every journalled
        # record is subsumed by its wal_seq and must be deduplicated.
        assert recovered.recover() == 0
    assert recovered.last_seq == 3
    assert not recovered.read_only, recovered.failure
    assert np.array_equal(
        recovered.writer.predict(output="logits"), after_compact
    ), f"recovered state diverges after crash at {point!r} (shards={shards})"

    # Finishing the script lands on the uncrashed run's exact final state.
    recovered.insert(rows(73, 2, n_cols))
    assert np.array_equal(recovered.writer.predict(output="logits"), final)


# --------------------------------------------------------------------------- #
# HTTP front-end: deadlines, degraded mode, structured failures
# --------------------------------------------------------------------------- #
async def _http(reader, writer, method, path, payload=None):
    body = json.dumps(payload).encode() if payload is not None else b""
    writer.write(
        (
            f"{method} {path} HTTP/1.1\r\nHost: test\r\n"
            f"Content-Length: {len(body)}\r\n\r\n"
        ).encode()
        + body
    )
    await writer.drain()
    head = await reader.readuntil(b"\r\n\r\n")
    status = int(head.split(b" ", 2)[1])
    headers = {}
    for line in head.split(b"\r\n")[1:]:
        if b":" in line:
            name, _, value = line.partition(b":")
            headers[name.decode().lower()] = value.strip().decode()
    length = int(headers["content-length"])
    return status, json.loads(await reader.readexactly(length)), headers


class _Client:
    """One keep-alive connection to a test server."""

    def __init__(self, port):
        self.port = port

    async def __aenter__(self):
        self.reader, self.writer = await asyncio.open_connection(
            "127.0.0.1", self.port
        )
        return self

    async def __aexit__(self, *exc):
        self.writer.close()

    async def request(self, method, path, payload=None):
        return await _http(self.reader, self.writer, method, path, payload)


def _serve(bundle_path, scenario, **config_kwargs):
    config_kwargs.setdefault("port", 0)
    config_kwargs.setdefault("replicas", 1)
    config_kwargs.setdefault("batch_window_ms", 2.0)

    async def run():
        server = ServingServer(
            FrozenModel.load(bundle_path)
            if "checkpoint_path" not in config_kwargs
            else str(bundle_path),
            ServerConfig(**config_kwargs),
        )
        await server.start()
        try:
            return await scenario(server)
        finally:
            await server.shutdown()

    return asyncio.run(run())


class TestDeadlines:
    def test_predict_deadline_answers_504_within_twice_the_budget(
        self, bundle_path
    ):
        budget = 0.25
        fault_registry().set("batcher.before_dispatch", "delay:2.0")

        async def scenario(server):
            async with _Client(server.port) as client:
                started = time.perf_counter()
                status, payload, _ = await client.request(
                    "POST", "/predict", {"node": 3}
                )
                elapsed = time.perf_counter() - started
            return status, payload, elapsed

        status, payload, elapsed = _serve(
            bundle_path, scenario,
            request_timeout_s=budget, drain_timeout_s=0.1,
        )
        assert status == 504
        assert payload["timeout_s"] == budget
        assert elapsed < 2 * budget + 0.2, f"504 took {elapsed:.3f}s"

    def test_write_deadline_answers_504_and_degrades(self, bundle_path):
        fault_registry().set("pool.mid_apply", "delay:2.0")

        async def scenario(server):
            async with _Client(server.port) as client:
                started = time.perf_counter()
                status, _, _ = await client.request(
                    "POST", "/insert", {"features": [[0.0] * 40]}
                )
                elapsed = time.perf_counter() - started
                health = (await client.request("GET", "/healthz"))[1]
                retry, _, retry_headers = await client.request(
                    "POST", "/compact", {}
                )
                read_status, _, _ = await client.request(
                    "POST", "/predict", {"node": 3}
                )
            return status, elapsed, health, retry, retry_headers, read_status

        status, elapsed, health, retry, retry_headers, read_status = _serve(
            bundle_path, scenario,
            write_timeout_s=0.25, drain_timeout_s=0.1,
        )
        assert status == 504 and elapsed < 0.7
        assert health["status"] == "degraded"
        assert "deadline" in health["failure"]
        assert retry == 503 and "retry-after" in retry_headers
        assert read_status == 200  # reads keep serving in degraded mode


class TestDegradedMode:
    def test_writer_failure_maps_to_500_then_503_with_reads_alive(
        self, bundle_path
    ):
        fault_registry().set("pool.mid_apply", "raise")

        async def scenario(server):
            async with _Client(server.port) as client:
                before = (await client.request("POST", "/predict", {"node": 3}))[1]
                fail_status, fail_body, _ = await client.request(
                    "POST", "/insert", {"features": [[0.0] * 40]}
                )
                health = (await client.request("GET", "/healthz"))[1]
                retry_status, retry_body, headers = await client.request(
                    "POST", "/delete", {"nodes": [1]}
                )
                after = await client.request("POST", "/predict", {"node": 3})
                stats = (await client.request("GET", "/stats"))[1]
            return (
                before, fail_status, fail_body, health,
                retry_status, retry_body, headers, after, stats,
            )

        (
            before, fail_status, fail_body, health,
            retry_status, retry_body, headers, after, stats,
        ) = _serve(bundle_path, scenario)
        assert fail_status == 500
        assert fail_body["type"] == "FaultInjected"
        assert health["status"] == "degraded"
        assert "FaultInjected" in health["failure"]
        assert retry_status == 503
        assert retry_body["status"] == "degraded"
        assert headers["retry-after"] == "30"
        # Reads survive quarantine bit-identically (same generation).
        assert after[0] == 200 and after[1]["result"] == before["result"]
        assert stats["status"] == "degraded"
        assert stats["pool"]["failure"] is not None

    def test_batch_failure_resolves_every_batchmate_with_structured_500(
        self, bundle_path
    ):
        fault_registry().set("batcher.before_dispatch", "raise")

        async def scenario(server):
            async with _Client(server.port) as a, _Client(server.port) as b, \
                    _Client(server.port) as c:
                results = await asyncio.gather(
                    a.request("POST", "/predict", {"node": 1}),
                    b.request("POST", "/predict", {"node": 2}),
                    c.request("POST", "/predict", {"node": 3}),
                )
                clear_faults()
                # The connections survived the failed batch.
                recovered = await a.request("POST", "/predict", {"node": 1})
            return results, recovered

        results, recovered = _serve(
            bundle_path, scenario, batch_window_ms=30.0
        )
        for status, body, _ in results:
            assert status == 500
            assert body["type"] == "FaultInjected"
            assert "injected fault" in body["error"]
        assert recovered[0] == 200

    def test_draining_health_and_queued_future_resolution(self, bundle_path):
        async def scenario(server):
            # A huge window parks the dispatcher mid-collection with one
            # future in the half-built batch; shutdown must fail it rather
            # than leak it.
            server.batcher.window_s = 30.0
            submission = asyncio.ensure_future(
                server.batcher.submit({"nodes": [1], "output": "labels"})
            )
            await asyncio.sleep(0.05)
            await server.batcher.stop(drain_timeout_s=0.1)
            with pytest.raises(ServerDrainingError):
                await submission
            return server.status

        status = _serve(bundle_path, scenario, drain_timeout_s=0.1)
        # shutdown() ran in _serve's finally: the state machine reports it.
        assert status in ("ok", "draining")

    def test_healthz_reports_wal_and_checkpoint_state(self, bundle_path, tmp_path):
        async def scenario(server):
            async with _Client(server.port) as client:
                await client.request(
                    "POST", "/insert",
                    {"features": [[0.0] * 40]},
                )
                await client.request("POST", "/delete", {"nodes": [2]})
                return (await client.request("GET", "/healthz"))[1]

        health = _serve(
            bundle_path, scenario,
            checkpoint_path=tmp_path / "ckpt.npz",
            wal_path=tmp_path / "mut.wal",
        )
        assert health["status"] == "ok"
        assert health["queue_depth"] == 0
        assert health["wal_depth"] == 1  # the tombstoning delete, uncheckpointed
        assert health["last_checkpoint_age_s"] >= 0.0


class TestServerRestart:
    def test_restart_prefers_checkpoint_and_replays_wal(
        self, bundle_path, tmp_path
    ):
        ckpt = tmp_path / "ckpt.npz"
        wal = tmp_path / "mut.wal"
        config = dict(
            checkpoint_path=ckpt, wal_path=wal, drain_timeout_s=0.5
        )

        async def first(server):
            async with _Client(server.port) as client:
                await client.request(
                    "POST", "/insert", {"features": [[0.1] * 40, [0.2] * 40]}
                )
                await client.request("POST", "/delete", {"nodes": [3, 11]})
                _, body, _ = await client.request(
                    "POST", "/predict", {"nodes": None, "output": "logits"}
                )
            return body["result"], server.pool.last_seq

        reference, last_seq = _serve(bundle_path, first, **config)
        assert last_seq == 2

        async def second(server):
            assert server.recovered == 1  # the delete rode the WAL
            assert server.pool.last_seq == last_seq
            async with _Client(server.port) as client:
                _, body, _ = await client.request(
                    "POST", "/predict", {"nodes": None, "output": "logits"}
                )
            return body["result"]

        replayed = _serve(bundle_path, second, **config)
        assert replayed == reference  # bit-identical across the restart


# --------------------------------------------------------------------------- #
# CLI: kill -9 a live server, restart it, verify nothing was lost
# --------------------------------------------------------------------------- #
@pytest.mark.chaos
def test_cli_serve_survives_kill_dash_nine(bundle_path, tmp_path):
    import re
    import signal

    env = dict(os.environ, PYTHONPATH=str(SRC_DIR))
    env.pop("REPRO_FAULTS", None)
    ckpt, wal = tmp_path / "ckpt.npz", tmp_path / "mut.wal"
    argv = [
        sys.executable, "-m", "repro.cli", "serve",
        "--bundle", str(bundle_path), "--port", "0",
        "--replicas", "1", "--checkpoint", str(ckpt), "--wal", str(wal),
    ]

    def start():
        process = subprocess.Popen(
            argv, env=env, cwd=REPO_ROOT,
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        )
        for _ in range(600):
            line = process.stderr.readline()
            match = re.search(r"http://127\.0\.0\.1:(\d+)", line)
            if match:
                return process, int(match.group(1))
        process.kill()
        raise AssertionError("server did not report its port")

    async def drive(port, *requests):
        async with _Client(port) as client:
            return [
                await client.request(method, path, payload)
                for method, path, payload in requests
            ]

    process, port = start()
    try:
        responses = asyncio.run(drive(
            port,
            ("POST", "/insert", {"features": [[0.3] * 40]}),
            ("POST", "/delete", {"nodes": [5]}),
            ("POST", "/predict", {"nodes": None, "output": "logits"}),
        ))
        assert [status for status, _, _ in responses] == [200, 200, 200]
        reference = responses[-1][1]["result"]
        process.send_signal(signal.SIGKILL)
        process.wait(timeout=30)
    finally:
        if process.poll() is None:
            process.kill()
        process.stdout.close()
        process.stderr.close()

    restarted, port = start()
    try:
        responses = asyncio.run(drive(
            port, ("POST", "/predict", {"nodes": None, "output": "logits"})
        ))
        assert responses[0][0] == 200
        assert responses[0][1]["result"] == reference
    finally:
        restarted.terminate()
        restarted.wait(timeout=30)
        restarted.stdout.close()
        restarted.stderr.close()
