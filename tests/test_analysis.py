"""Tests for the analysis package (embedding metrics, reports, trackers)."""

import numpy as np
import pytest

from repro.analysis import (
    GateTracker,
    TopologyTracker,
    class_separation_ratio,
    classification_report,
    extract_embeddings,
    pca_project,
    per_class_accuracy,
    silhouette_score,
)
from repro.autograd import Tensor
from repro.core import DHGCN, DHGCNConfig
from repro.errors import ShapeError
from repro.models import MLP
from repro.training import TrainConfig, Trainer


@pytest.fixture()
def separated_embeddings():
    rng = np.random.default_rng(0)
    embeddings = np.vstack(
        [rng.normal(0.0, 0.3, (20, 5)), rng.normal(6.0, 0.3, (20, 5))]
    )
    labels = np.repeat([0, 1], 20)
    return embeddings, labels


class TestEmbeddingMetrics:
    def test_extract_embeddings_shape(self, tiny_citation_dataset):
        dataset = tiny_citation_dataset
        model = MLP(dataset.n_features, dataset.n_classes, seed=0).setup(dataset)
        embeddings = extract_embeddings(model, dataset.features)
        assert embeddings.shape == (dataset.n_nodes, dataset.n_classes)

    def test_pca_project_shapes_and_variance_order(self, separated_embeddings):
        embeddings, _ = separated_embeddings
        projected = pca_project(embeddings, 2)
        assert projected.shape == (40, 2)
        # The first principal component carries at least as much variance.
        assert projected[:, 0].var() >= projected[:, 1].var()

    def test_pca_validation(self, separated_embeddings):
        embeddings, _ = separated_embeddings
        with pytest.raises(ValueError):
            pca_project(embeddings, 0)
        with pytest.raises(ValueError):
            pca_project(embeddings, 99)
        with pytest.raises(ShapeError):
            pca_project(np.zeros(5))

    def test_silhouette_separated_vs_mixed(self, separated_embeddings):
        embeddings, labels = separated_embeddings
        good = silhouette_score(embeddings, labels)
        rng = np.random.default_rng(1)
        bad = silhouette_score(embeddings, rng.permutation(labels))
        assert good > 0.8
        assert bad < good

    def test_silhouette_requires_two_classes(self, separated_embeddings):
        embeddings, _ = separated_embeddings
        with pytest.raises(ValueError):
            silhouette_score(embeddings, np.zeros(40, dtype=int))

    def test_class_separation_ratio(self, separated_embeddings):
        embeddings, labels = separated_embeddings
        separated = class_separation_ratio(embeddings, labels)
        rng = np.random.default_rng(2)
        shuffled = class_separation_ratio(embeddings, rng.permutation(labels))
        assert separated > shuffled
        assert separated > 10.0

    def test_class_separation_degenerate_within_zero(self):
        embeddings = np.array([[0.0, 0.0], [0.0, 0.0], [1.0, 1.0], [1.0, 1.0]])
        labels = np.array([0, 0, 1, 1])
        assert class_separation_ratio(embeddings, labels) == float("inf")


class TestReports:
    def test_per_class_accuracy(self):
        predictions = np.array([0, 0, 1, 2, 2, 2])
        targets = np.array([0, 1, 1, 2, 2, 0])
        per_class = per_class_accuracy(predictions, targets, n_classes=3)
        assert per_class[0] == pytest.approx(0.5)
        assert per_class[1] == pytest.approx(0.5)
        assert per_class[2] == pytest.approx(1.0)

    def test_classification_report_structure(self):
        predictions = np.array([0, 1, 1, 2, 2, 0])
        targets = np.array([0, 1, 2, 2, 2, 0])
        report = classification_report(predictions, targets)
        markdown = report.to_markdown()
        assert "precision" in markdown and "macro avg" in markdown
        assert len(report) == 4  # 3 classes + macro average row

    def test_classification_report_custom_names_and_validation(self):
        predictions = np.array([0, 1])
        targets = np.array([0, 1])
        report = classification_report(predictions, targets, class_names=["cats", "dogs"])
        assert "cats" in report.to_markdown()
        with pytest.raises(ValueError):
            classification_report(predictions, targets, class_names=["only-one"])


class TestTrackers:
    def test_gate_tracker_records_and_measures_drift(self, tiny_citation_dataset):
        dataset = tiny_citation_dataset
        model = DHGCN(dataset.n_features, dataset.n_classes, DHGCNConfig(hidden_dim=8), seed=0)
        trainer = Trainer(model, dataset, TrainConfig(epochs=5, patience=None))
        tracker = GateTracker()
        tracker.update(0, model)
        trainer.train()
        tracker.update(5, model)
        assert tracker.as_array().shape == (2, 2)
        assert tracker.drift() >= 0.0

    def test_gate_tracker_empty(self):
        tracker = GateTracker()
        assert tracker.as_array().shape == (0, 0)
        assert tracker.drift() == 0.0

    def test_topology_tracker_homophily_improves_with_training(self, tiny_citation_dataset):
        dataset = tiny_citation_dataset
        model = DHGCN(dataset.n_features, dataset.n_classes, DHGCNConfig(hidden_dim=16), seed=0)
        tracker = TopologyTracker(labels=dataset.labels)
        trainer = Trainer(model, dataset, TrainConfig(epochs=2, patience=None))
        trainer.train()
        tracker.update(2, model)
        trainer = Trainer(model, dataset, TrainConfig(epochs=30, patience=None))
        trainer.train()
        tracker.update(30, model)
        assert len(tracker.homophily) == 2
        assert tracker.improvement() > -0.15  # should not collapse; typically positive

    def test_topology_tracker_ignores_static_only_models(self, tiny_citation_dataset):
        dataset = tiny_citation_dataset
        config = DHGCNConfig(hidden_dim=8).ablate("dynamic")
        model = DHGCN(dataset.n_features, dataset.n_classes, config, seed=0).setup(dataset)
        tracker = TopologyTracker(labels=dataset.labels)
        tracker.update(0, model)
        assert tracker.homophily == []
        assert tracker.improvement() == 0.0
