"""Tests for the analysis package (embedding metrics, reports, trackers)."""

import numpy as np
import pytest

from repro.analysis import (
    GateTracker,
    TopologyTracker,
    class_separation_ratio,
    classification_report,
    extract_embeddings,
    pca_project,
    per_class_accuracy,
    silhouette_score,
)
from repro.autograd import Tensor
from repro.core import DHGCN, DHGCNConfig
from repro.errors import ShapeError
from repro.models import MLP
from repro.training import TrainConfig, Trainer


@pytest.fixture()
def separated_embeddings():
    rng = np.random.default_rng(0)
    embeddings = np.vstack(
        [rng.normal(0.0, 0.3, (20, 5)), rng.normal(6.0, 0.3, (20, 5))]
    )
    labels = np.repeat([0, 1], 20)
    return embeddings, labels


class TestEmbeddingMetrics:
    def test_extract_embeddings_shape(self, tiny_citation_dataset):
        dataset = tiny_citation_dataset
        model = MLP(dataset.n_features, dataset.n_classes, seed=0).setup(dataset)
        embeddings = extract_embeddings(model, dataset.features)
        assert embeddings.shape == (dataset.n_nodes, dataset.n_classes)

    def test_pca_project_shapes_and_variance_order(self, separated_embeddings):
        embeddings, _ = separated_embeddings
        projected = pca_project(embeddings, 2)
        assert projected.shape == (40, 2)
        # The first principal component carries at least as much variance.
        assert projected[:, 0].var() >= projected[:, 1].var()

    def test_pca_validation(self, separated_embeddings):
        embeddings, _ = separated_embeddings
        with pytest.raises(ValueError):
            pca_project(embeddings, 0)
        with pytest.raises(ValueError):
            pca_project(embeddings, 99)
        with pytest.raises(ShapeError):
            pca_project(np.zeros(5))

    def test_silhouette_separated_vs_mixed(self, separated_embeddings):
        embeddings, labels = separated_embeddings
        good = silhouette_score(embeddings, labels)
        rng = np.random.default_rng(1)
        bad = silhouette_score(embeddings, rng.permutation(labels))
        assert good > 0.8
        assert bad < good

    def test_silhouette_requires_two_classes(self, separated_embeddings):
        embeddings, _ = separated_embeddings
        with pytest.raises(ValueError):
            silhouette_score(embeddings, np.zeros(40, dtype=int))

    def test_class_separation_ratio(self, separated_embeddings):
        embeddings, labels = separated_embeddings
        separated = class_separation_ratio(embeddings, labels)
        rng = np.random.default_rng(2)
        shuffled = class_separation_ratio(embeddings, rng.permutation(labels))
        assert separated > shuffled
        assert separated > 10.0

    def test_class_separation_degenerate_within_zero(self):
        embeddings = np.array([[0.0, 0.0], [0.0, 0.0], [1.0, 1.0], [1.0, 1.0]])
        labels = np.array([0, 0, 1, 1])
        assert class_separation_ratio(embeddings, labels) == float("inf")


class TestReports:
    def test_per_class_accuracy(self):
        predictions = np.array([0, 0, 1, 2, 2, 2])
        targets = np.array([0, 1, 1, 2, 2, 0])
        per_class = per_class_accuracy(predictions, targets, n_classes=3)
        assert per_class[0] == pytest.approx(0.5)
        assert per_class[1] == pytest.approx(0.5)
        assert per_class[2] == pytest.approx(1.0)

    def test_classification_report_structure(self):
        predictions = np.array([0, 1, 1, 2, 2, 0])
        targets = np.array([0, 1, 2, 2, 2, 0])
        report = classification_report(predictions, targets)
        markdown = report.to_markdown()
        assert "precision" in markdown and "macro avg" in markdown
        assert len(report) == 4  # 3 classes + macro average row

    def test_classification_report_custom_names_and_validation(self):
        predictions = np.array([0, 1])
        targets = np.array([0, 1])
        report = classification_report(predictions, targets, class_names=["cats", "dogs"])
        assert "cats" in report.to_markdown()
        with pytest.raises(ValueError):
            classification_report(predictions, targets, class_names=["only-one"])


class TestTrackers:
    def test_gate_tracker_records_and_measures_drift(self, tiny_citation_dataset):
        dataset = tiny_citation_dataset
        model = DHGCN(dataset.n_features, dataset.n_classes, DHGCNConfig(hidden_dim=8), seed=0)
        trainer = Trainer(model, dataset, TrainConfig(epochs=5, patience=None))
        tracker = GateTracker()
        tracker.update(0, model)
        trainer.train()
        tracker.update(5, model)
        assert tracker.as_array().shape == (2, 2)
        assert tracker.drift() >= 0.0

    def test_gate_tracker_empty(self):
        tracker = GateTracker()
        assert tracker.as_array().shape == (0, 0)
        assert tracker.drift() == 0.0

    def test_topology_tracker_homophily_improves_with_training(self, tiny_citation_dataset):
        dataset = tiny_citation_dataset
        model = DHGCN(dataset.n_features, dataset.n_classes, DHGCNConfig(hidden_dim=16), seed=0)
        tracker = TopologyTracker(labels=dataset.labels)
        trainer = Trainer(model, dataset, TrainConfig(epochs=2, patience=None))
        trainer.train()
        tracker.update(2, model)
        trainer = Trainer(model, dataset, TrainConfig(epochs=30, patience=None))
        trainer.train()
        tracker.update(30, model)
        assert len(tracker.homophily) == 2
        assert tracker.improvement() > -0.15  # should not collapse; typically positive

    def test_topology_tracker_ignores_static_only_models(self, tiny_citation_dataset):
        dataset = tiny_citation_dataset
        config = DHGCNConfig(hidden_dim=8).ablate("dynamic")
        model = DHGCN(dataset.n_features, dataset.n_classes, config, seed=0).setup(dataset)
        tracker = TopologyTracker(labels=dataset.labels)
        tracker.update(0, model)
        assert tracker.homophily == []
        assert tracker.improvement() == 0.0


# --------------------------------------------------------------------------- #
# repro lint: engine + rule-pack golden fixtures
# --------------------------------------------------------------------------- #
import textwrap
import threading
from pathlib import Path

from repro.analysis.lint import LintError, load_baseline, run_lint, write_baseline
from repro.analysis.rules import all_rules
from repro.analysis.sanitize import LockDisciplineError, guard_attrs
from repro.errors import ConfigurationError

REPO_ROOT = Path(__file__).resolve().parents[1]


def _lint(tmp_path, tree, **kwargs):
    """Materialise ``{relpath: source}`` under tmp_path and lint it."""
    for rel, text in tree.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(text))
    return run_lint([tmp_path], all_rules(), root=tmp_path, **kwargs)


def _rules_of(findings):
    return sorted({finding.rule for finding in findings})


class TestLintRuleFixtures:
    """One firing and one non-firing fixture per rule in the pack."""

    def test_rl001_blocking_call_in_async_fires(self, tmp_path):
        findings = _lint(tmp_path, {
            "repro/serving/handler.py": """
                import time

                async def handler(request):
                    time.sleep(0.1)
                    return request
            """,
        })
        assert _rules_of(findings) == ["RL001"]
        assert "time.sleep" in findings[0].message

    def test_rl001_sync_lock_with_in_async_fires(self, tmp_path):
        findings = _lint(tmp_path, {
            "repro/serving/handler.py": """
                async def handler(self):
                    with self._lock:
                        return self.value
            """,
        })
        assert _rules_of(findings) == ["RL001"]

    def test_rl001_clean_async_awaits_and_executors(self, tmp_path):
        findings = _lint(tmp_path, {
            "repro/serving/handler.py": """
                import asyncio

                async def handler(self, loop, fn):
                    await asyncio.sleep(0)
                    await self.lock.acquire()
                    return await loop.run_in_executor(None, fn)
            """,
        })
        assert findings == []

    def test_rl002_raw_dtype_literal_fires(self, tmp_path):
        findings = _lint(tmp_path, {
            "repro/models/head.py": """
                import numpy as np

                def zeros(n):
                    return np.zeros(n, dtype=np.float64)
            """,
        })
        assert _rules_of(findings) == ["RL002"]

    def test_rl002_clean_via_precision_and_whitelist(self, tmp_path):
        findings = _lint(tmp_path, {
            "repro/models/head.py": """
                import numpy as np
                from repro.precision import resolve_dtype

                def zeros(n):
                    return np.zeros(n, dtype=resolve_dtype("float64"))
            """,
            # The precision policy layer itself may spell dtypes out.
            "repro/hypergraph/kernel.py": """
                import numpy as np

                ACC = np.float64
            """,
        })
        assert findings == []

    def test_rl003_global_rng_and_kernel_clock_fire(self, tmp_path):
        findings = _lint(tmp_path, {
            "repro/nn/layer.py": """
                import numpy as np

                def init(n):
                    return np.random.rand(n)
            """,
            "repro/optim/sgd.py": """
                import random
                import time

                def step():
                    return random.random() + time.time()
            """,
        })
        assert _rules_of(findings) == ["RL003"]
        assert len(findings) == 3  # np.random.rand, random.random, time.time

    def test_rl003_clean_seeded_generator_and_serving_clock(self, tmp_path):
        findings = _lint(tmp_path, {
            "repro/nn/layer.py": """
                import numpy as np

                def init(n, seed):
                    return np.random.default_rng(seed).random(n)
            """,
            # serving legitimately timestamps checkpoints.
            "repro/serving/pool.py": """
                import time

                def stamp():
                    return time.time()
            """,
        })
        assert findings == []

    def test_rl004_undeclared_and_dead_fault_points_fire(self, tmp_path):
        findings = _lint(tmp_path, {
            "repro/serving/wal.py": """
                from repro.serving.faults import fault_point

                def append():
                    fault_point("wal.mystery")
            """,
            "repro/serving/pool.py": """
                from repro.serving.faults import declare_fault_point

                declare_fault_point("pool.never_crossed", "dead")
            """,
        })
        assert _rules_of(findings) == ["RL004"]
        assert len(findings) == 2

    def test_rl004_clean_declared_and_used(self, tmp_path):
        findings = _lint(tmp_path, {
            "repro/serving/wal.py": """
                from repro.serving.faults import declare_fault_point, fault_point

                declare_fault_point("wal.before_fsync", "journal flushed")

                def append():
                    fault_point("wal.before_fsync")
            """,
        })
        assert findings == []

    def test_rl005_bad_metric_names_fire(self, tmp_path):
        findings = _lint(tmp_path, {
            "repro/training/loop.py": """
                def wire(registry):
                    registry.counter("requests")
                    registry.histogram("repro_latency")
                    registry.gauge("repro_queue_total")
            """,
        })
        assert _rules_of(findings) == ["RL005"]
        messages = " ".join(finding.message for finding in findings)
        assert "repro_ namespace" in messages
        assert "_total" in messages

    def test_rl005_kind_conflict_across_files_fires(self, tmp_path):
        findings = _lint(tmp_path, {
            "repro/serving/a.py": """
                def wire(registry):
                    registry.counter("repro_swaps_total")
            """,
            "repro/obs/b.py": """
                def wire(registry):
                    registry.gauge("repro_swaps_total")
            """,
        })
        assert "RL005" in _rules_of(findings)
        assert any("re-registered" in finding.message for finding in findings)

    def test_rl005_clean_vocabulary(self, tmp_path):
        findings = _lint(tmp_path, {
            "repro/training/loop.py": """
                def wire(registry):
                    registry.counter("repro_requests_total")
                    registry.histogram("repro_latency_seconds")
                    registry.gauge("repro_queue_depth")
            """,
        })
        assert findings == []

    def test_rl006_lock_free_access_of_guarded_attr_fires(self, tmp_path):
        findings = _lint(tmp_path, {
            "repro/serving/pool.py": """
                import threading

                class Pool:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self._items = []

                    def add(self, item):
                        with self._lock:
                            self._items.append(item)

                    def size(self):
                        return len(self._items)
            """,
        })
        assert _rules_of(findings) == ["RL006"]
        assert "Pool._items" in findings[0].message

    def test_rl006_clean_when_every_access_is_locked(self, tmp_path):
        findings = _lint(tmp_path, {
            "repro/serving/pool.py": """
                import threading

                class Pool:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self._items = []

                    def add(self, item):
                        with self._lock:
                            self._items.append(item)

                    def size(self):
                        with self._lock:
                            return len(self._items)
            """,
        })
        assert findings == []

    _BACKEND_PREAMBLE = """
        class NeighborBackend:
            def query(self, features, k, *, include_self=False):
                raise NotImplementedError

            def update(self, features):
                pass
    """

    def test_rl007_signature_drift_and_missing_query_fire(self, tmp_path):
        findings = _lint(tmp_path, {
            "repro/hypergraph/neighbors.py": self._BACKEND_PREAMBLE + """

                class Drifted(NeighborBackend):
                    def query(self, feats, k):
                        return feats

                class Lazy(NeighborBackend):
                    pass

                register_neighbor_backend("drifted", Drifted)
                register_neighbor_backend("lazy", Lazy)
            """,
        })
        assert _rules_of(findings) == ["RL007"]
        messages = " ".join(finding.message for finding in findings)
        assert "drifts" in messages
        assert "never overrides" in messages

    def test_rl007_clean_conforming_backend(self, tmp_path):
        findings = _lint(tmp_path, {
            "repro/hypergraph/neighbors.py": self._BACKEND_PREAMBLE + """

                class Exact(NeighborBackend):
                    def query(self, features, k, *, include_self=False):
                        return features

                register_neighbor_backend("exact", Exact)
            """,
        })
        assert findings == []

    def test_rl008_undocumented_raise_fires(self, tmp_path):
        findings = _lint(tmp_path, {
            "repro/serving/api.py": """
                class Store:
                    def load(self, path):
                        raise ValueError(f"bad path {path}")
            """,
        })
        assert _rules_of(findings) == ["RL008"]
        assert "load()" in findings[0].message

    def test_rl008_clean_documented_or_private(self, tmp_path):
        findings = _lint(tmp_path, {
            "repro/serving/api.py": """
                class Store:
                    def load(self, path):
                        '''Load a bundle; raises ValueError for a bad path.'''
                        raise ValueError(f"bad path {path}")

                    def _internal(self):
                        raise RuntimeError("implementation detail")
            """,
        })
        assert findings == []


class TestLintEngine:
    def test_suppression_comment_silences_one_rule(self, tmp_path):
        findings = _lint(tmp_path, {
            "repro/models/head.py": """
                import numpy as np

                ACC = np.float64  # repro-lint: disable=RL002
            """,
        })
        assert findings == []

    def test_suppression_comment_is_rule_specific(self, tmp_path):
        findings = _lint(tmp_path, {
            "repro/models/head.py": """
                import numpy as np

                ACC = np.float64  # repro-lint: disable=RL001
            """,
        })
        assert _rules_of(findings) == ["RL002"]

    def test_baseline_round_trip_absorbs_then_resurfaces(self, tmp_path):
        tree = {
            "repro/models/head.py": """
                import numpy as np

                ACC = np.float64
            """,
        }
        findings = _lint(tmp_path / "project", tree)
        assert _rules_of(findings) == ["RL002"]
        baseline_path = tmp_path / "baseline.json"
        write_baseline(baseline_path, findings)
        baseline = load_baseline(baseline_path)
        assert _lint(tmp_path / "project", tree, baseline=baseline) == []
        # A second identical violation exceeds the baselined count and
        # resurfaces instead of hiding behind the absorbed one.
        grown = {
            "repro/models/head.py": """
                import numpy as np

                ACC = np.float64
                OTHER = np.float64
            """,
        }
        resurfaced = _lint(tmp_path / "grown", grown, baseline=baseline)
        assert len(resurfaced) == 1 and resurfaced[0].rule == "RL002"

    def test_select_ignore_and_unknown_rule(self, tmp_path):
        tree = {
            "repro/serving/api.py": """
                import numpy as np

                class Store:
                    def load(self):
                        raise ValueError("always")

                ACC = np.float64
            """,
        }
        assert _rules_of(_lint(tmp_path, tree)) == ["RL002", "RL008"]
        only = _lint(tmp_path, tree, select=["RL008"])
        assert _rules_of(only) == ["RL008"]
        without = _lint(tmp_path, tree, ignore=["RL008"])
        assert _rules_of(without) == ["RL002"]
        with pytest.raises(LintError, match="unknown rule id"):
            _lint(tmp_path, tree, select=["RL999"])

    def test_unparsable_file_is_an_error_not_a_skip(self, tmp_path):
        with pytest.raises(LintError, match="does not parse"):
            _lint(tmp_path, {"repro/serving/broken.py": "def oops(:\n"})

    def test_shipped_tree_is_clean_with_an_empty_baseline(self):
        paths = [REPO_ROOT / "src" / "repro"]
        benchmarks = REPO_ROOT / "benchmarks"
        if benchmarks.is_dir():
            paths.append(benchmarks)
        assert run_lint(paths, all_rules(), root=REPO_ROOT) == []


# --------------------------------------------------------------------------- #
# Lock-discipline runtime sanitizer (REPRO_SANITIZE=locks)
# --------------------------------------------------------------------------- #
@guard_attrs("_lock", "_items", force=True)
class _GuardedBox:
    def __init__(self):
        self._lock = threading.Lock()
        self._items = []  # __init__ is exempt by construction idiom

    def add(self, item):
        with self._lock:
            self._items.append(item)

    def peek_unlocked(self):
        return list(self._items)


class TestLockSanitizer:
    def test_locked_access_passes_and_unlocked_raises(self):
        box = _GuardedBox()
        box.add(1)
        with pytest.raises(LockDisciplineError, match=r"_GuardedBox\._items"):
            box.peek_unlocked()
        with box._lock:  # the owning thread may read under the lock
            assert box.peek_unlocked() == [1]

    def test_unlocked_write_raises(self):
        box = _GuardedBox()
        with pytest.raises(LockDisciplineError, match="write"):
            box._items = [2]

    def test_other_threads_violations_are_caught(self):
        box = _GuardedBox()
        failures = []

        def worker():
            try:
                box.peek_unlocked()
            except LockDisciplineError as error:
                failures.append(error)

        with box._lock:
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        assert len(failures) == 1  # holding the lock here does not cover them

    def test_slots_clash_is_rejected(self):
        with pytest.raises(ConfigurationError, match="__slots__"):
            @guard_attrs("_lock", "_items", force=True)
            class Slotted:  # noqa: F841 - decoration itself must fail
                __slots__ = ("_lock", "_items")

    def test_disabled_decorator_is_identity(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "")
        from repro.analysis import sanitize

        @sanitize.guard_attrs("_lock", "_items")
        class Plain:
            def __init__(self):
                self._lock = threading.Lock()
                self._items = []

            def peek(self):
                return self._items

        assert Plain().peek() == []  # no descriptors installed, no checks
