"""Gradient correctness of reductions and shape operations."""

import numpy as np
import pytest

from repro.autograd import Tensor, check_gradients
from repro.autograd.ops_reduce import max_, mean, min_, sum_
from repro.autograd.ops_shape import concat, gather_rows, getitem, reshape, stack, transpose


def _t(shape, seed):
    return Tensor(np.random.default_rng(seed).normal(size=shape), requires_grad=True)


class TestReduceForward:
    def test_sum_axis_and_keepdims(self):
        a = Tensor(np.arange(6.0).reshape(2, 3))
        assert sum_(a).data == pytest.approx(15.0)
        assert np.allclose(sum_(a, axis=0).data, [3.0, 5.0, 7.0])
        assert sum_(a, axis=1, keepdims=True).shape == (2, 1)

    def test_mean(self):
        a = Tensor(np.arange(6.0).reshape(2, 3))
        assert mean(a).data == pytest.approx(2.5)
        assert np.allclose(mean(a, axis=1).data, [1.0, 4.0])

    def test_max_min(self):
        a = Tensor([[1.0, 9.0], [4.0, 2.0]])
        assert max_(a).data == pytest.approx(9.0)
        assert np.allclose(max_(a, axis=0).data, [4.0, 9.0])
        assert min_(a).data == pytest.approx(1.0)


class TestReduceGradients:
    def test_sum_all(self):
        check_gradients(lambda a: sum_(a), [_t((3, 4), 0)])

    def test_sum_axis(self):
        check_gradients(lambda a: sum_(a, axis=0).sum(), [_t((3, 4), 1)])
        check_gradients(lambda a: sum_(a, axis=1, keepdims=True).sum(), [_t((3, 4), 2)])

    def test_mean_all_and_axis(self):
        check_gradients(lambda a: mean(a), [_t((2, 5), 3)])
        check_gradients(lambda a: mean(a, axis=1).sum(), [_t((2, 5), 4)])

    def test_max_gradient_flows_to_argmax(self):
        a = Tensor([[1.0, 5.0], [7.0, 2.0]], requires_grad=True)
        max_(a, axis=1).sum().backward()
        assert np.allclose(a.grad, [[0.0, 1.0], [1.0, 0.0]])

    def test_max_ties_share_gradient(self):
        a = Tensor([[3.0, 3.0]], requires_grad=True)
        max_(a, axis=1).sum().backward()
        assert np.allclose(a.grad, [[0.5, 0.5]])

    def test_min_gradient(self):
        check_gradients(lambda a: min_(a, axis=0).sum(), [_t((4, 3), 5)])


class TestShapeOps:
    def test_reshape_roundtrip(self):
        a = _t((2, 6), 6)
        assert reshape(a, (3, 4)).shape == (3, 4)
        check_gradients(lambda a: (reshape(a, (3, 4)) ** 2).sum(), [a])

    def test_transpose_default_and_axes(self):
        a = _t((2, 3), 7)
        assert transpose(a).shape == (3, 2)
        b = _t((2, 3, 4), 8)
        assert transpose(b, (2, 0, 1)).shape == (4, 2, 3)
        check_gradients(lambda a: (transpose(a) @ a).sum(), [a])

    def test_tensor_T_property(self):
        a = Tensor(np.arange(6.0).reshape(2, 3))
        assert a.T.shape == (3, 2)

    def test_getitem_slice(self):
        a = _t((5, 4), 9)
        sub = a[1:3]
        assert sub.shape == (2, 4)
        check_gradients(lambda a: (a[1:3] ** 2).sum(), [a])

    def test_getitem_integer_array(self):
        a = _t((6, 3), 10)
        idx = np.array([0, 2, 2, 5])
        check_gradients(lambda a: (a[idx] ** 2).sum(), [a])

    def test_gather_rows_duplicates_accumulate(self):
        a = Tensor(np.ones((3, 2)), requires_grad=True)
        out = gather_rows(a, [0, 0, 2])
        out.sum().backward()
        assert np.allclose(a.grad, [[2.0, 2.0], [0.0, 0.0], [1.0, 1.0]])

    def test_concat_forward_and_grad(self):
        a, b = _t((2, 3), 11), _t((4, 3), 12)
        out = concat([a, b], axis=0)
        assert out.shape == (6, 3)
        check_gradients(lambda a, b: (concat([a, b], axis=0) ** 2).sum(), [a, b])

    def test_concat_axis1(self):
        a, b = _t((2, 3), 13), _t((2, 2), 14)
        assert concat([a, b], axis=1).shape == (2, 5)

    def test_concat_empty_raises(self):
        with pytest.raises(ValueError):
            concat([], axis=0)

    def test_stack(self):
        a, b = _t((3,), 15), _t((3,), 16)
        out = stack([a, b], axis=0)
        assert out.shape == (2, 3)
        check_gradients(lambda a, b: (stack([a, b], axis=0) ** 2).sum(), [a, b])

    def test_getitem_with_tensor_index(self):
        a = _t((4, 2), 17)
        index = Tensor([0.0, 3.0])
        assert getitem(a, index).shape == (2, 2)
