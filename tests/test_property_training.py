"""Property-based tests (hypothesis) for metrics, splits and result formatting."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.splits import label_rate_split, planetoid_split, stratified_split
from repro.training.metrics import accuracy, confusion_matrix, macro_f1, micro_f1
from repro.training.results import ResultTable, format_mean_std


@st.composite
def prediction_target_pairs(draw, max_samples=40, max_classes=5):
    n = draw(st.integers(min_value=1, max_value=max_samples))
    c = draw(st.integers(min_value=1, max_value=max_classes))
    predictions = draw(st.lists(st.integers(0, c - 1), min_size=n, max_size=n))
    targets = draw(st.lists(st.integers(0, c - 1), min_size=n, max_size=n))
    return np.array(predictions), np.array(targets), c


@st.composite
def balanced_labels(draw, max_classes=5, max_per_class=30):
    c = draw(st.integers(min_value=2, max_value=max_classes))
    per_class = draw(st.integers(min_value=10, max_value=max_per_class))
    return np.repeat(np.arange(c), per_class)


@given(prediction_target_pairs())
@settings(max_examples=50, deadline=None)
def test_accuracy_bounds_and_confusion_consistency(pair):
    predictions, targets, n_classes = pair
    value = accuracy(predictions, targets)
    assert 0.0 <= value <= 1.0
    matrix = confusion_matrix(predictions, targets, n_classes)
    assert matrix.sum() == predictions.size
    assert np.trace(matrix) == int(round(value * predictions.size))


@given(prediction_target_pairs())
@settings(max_examples=50, deadline=None)
def test_micro_f1_equals_accuracy(pair):
    predictions, targets, _ = pair
    assert micro_f1(predictions, targets) == accuracy(predictions, targets)


@given(prediction_target_pairs())
@settings(max_examples=50, deadline=None)
def test_macro_f1_bounds_and_perfection(pair):
    predictions, targets, n_classes = pair
    assert 0.0 <= macro_f1(predictions, targets, n_classes) <= 1.0
    assert macro_f1(targets, targets, n_classes) == 1.0


@given(balanced_labels(), st.integers(min_value=1, max_value=5), st.integers(0, 1000))
@settings(max_examples=30, deadline=None)
def test_planetoid_split_is_disjoint_and_stratified(labels, train_per_class, seed):
    if train_per_class >= np.bincount(labels).min():
        train_per_class = max(np.bincount(labels).min() - 1, 1)
    split = planetoid_split(labels, train_per_class=train_per_class, n_val=10, seed=seed)
    union = np.concatenate([split.train, split.val, split.test])
    assert np.unique(union).size == union.size
    assert union.size <= labels.size
    counts = np.bincount(labels[split.train], minlength=labels.max() + 1)
    assert np.all(counts == train_per_class)


@given(balanced_labels(), st.floats(min_value=0.02, max_value=0.4), st.integers(0, 1000))
@settings(max_examples=30, deadline=None)
def test_label_rate_split_respects_rate_roughly(labels, rate, seed):
    split = label_rate_split(labels, label_rate=rate, seed=seed)
    observed = split.train.size / labels.size
    assert observed <= rate + 0.15
    assert split.train.size >= np.unique(labels).size
    union = np.concatenate([split.train, split.val, split.test])
    assert np.unique(union).size == union.size == labels.size


@given(balanced_labels(), st.integers(0, 1000))
@settings(max_examples=30, deadline=None)
def test_stratified_split_partitions_everything(labels, seed):
    split = stratified_split(labels, fractions=(0.6, 0.2, 0.2), seed=seed)
    union = np.sort(np.concatenate([split.train, split.val, split.test]))
    assert np.array_equal(union, np.arange(labels.size))


@given(st.lists(st.floats(min_value=0.0, max_value=1.0), min_size=1, max_size=10))
@settings(max_examples=50, deadline=None)
def test_format_mean_std_parses_back(values):
    formatted = format_mean_std(values)
    mean_text, std_text = formatted.split("±")
    assert abs(float(mean_text) - 100.0 * np.mean(values)) < 0.01
    assert abs(float(std_text) - 100.0 * np.std(values)) < 0.01


@given(
    st.lists(
        st.tuples(
            st.text(alphabet="abcdefghijklmnopqrstuvwxyz", min_size=1, max_size=8),
            st.floats(0, 1, allow_nan=False),
        ),
        min_size=1,
        max_size=8,
    )
)
@settings(max_examples=40, deadline=None)
def test_result_table_roundtrip(rows):
    table = ResultTable(["name", "value"])
    for name, value in rows:
        table.add_row([name, value])
    assert len(table) == len(rows)
    assert table.column("name") == [name for name, _ in rows]
    markdown = table.to_markdown()
    assert markdown.count("\n") == len(rows) + 1  # header + separator + rows
