"""Contract suite for the pluggable neighbour-search backends.

Every backend registered in :mod:`repro.hypergraph.neighbors` is run through
the same parametrised contract (``pytest -m backend_contract``):

* output shape/dtype/range and the documented ``(distance, index)``
  deterministic tie-break, including duplicated-point inputs where every
  distance ties at zero;
* uniform validation behaviour (``k <= 0``, ``k`` too large — which covers
  empty feature matrices — and non-2-D features) across all backends;
* exact == brute force **bit-identical**;
* incremental == exact bit-identical after arbitrary seeded move/no-move
  sequences (property-based), and after arbitrary insert/delete sequences
  through the grow-and-repair / shrink-and-repair paths;
* LSH recall above a configured floor on clustered synthetic data.

Plus the golden training regressions: DHGNN trained with the exact and the
incremental backend must produce *identical* loss/accuracy histories and
identical operator-cache hit patterns, and an LSH run must converge within
tolerance of the exact run.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, ShapeError
from repro.hypergraph import (
    ExactBackend,
    IncrementalBackend,
    LSHBackend,
    NeighborBackend,
    available_neighbor_backends,
    knn_indices,
    knn_indices_bruteforce,
    register_neighbor_backend,
    reset_default_engine,
    resolve_backend,
)
from repro.hypergraph.refresh import TopologyRefreshEngine
from repro.models import DHGNN
from repro.training import TrainConfig, Trainer

pytestmark = pytest.mark.backend_contract

BACKENDS = available_neighbor_backends()


def _make_backend(name: str) -> NeighborBackend:
    # A fresh instance per test so stateful backends never leak state.
    return resolve_backend(name)


def _clustered_features(seed: int, n: int = 240, d: int = 12, n_clusters: int = 6) -> np.ndarray:
    rng = np.random.default_rng(seed)
    centers = rng.normal(scale=5.0, size=(n_clusters, d))
    assignments = rng.integers(0, n_clusters, size=n)
    return centers[assignments] + rng.normal(scale=0.5, size=(n, d))


# --------------------------------------------------------------------------- #
# Shape / order / validation contract (every backend)
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("name", BACKENDS)
class TestBackendContract:
    def test_shape_dtype_and_range(self, name):
        features = _clustered_features(0, n=60)
        result = _make_backend(name).query(features, 5)
        assert result.shape == (60, 5)
        assert result.dtype == np.int64
        assert result.min() >= 0 and result.max() < 60

    def test_no_self_by_default(self, name):
        features = _clustered_features(1, n=40)
        result = _make_backend(name).query(features, 4)
        rows = np.arange(40)[:, None]
        assert not np.any(result == rows)

    def test_include_self_lists_self_first(self, name):
        # With distinct points the node itself is its unique distance-0
        # neighbour, so include_self puts it first for every backend.
        rng = np.random.default_rng(2)
        features = rng.normal(size=(30, 6))
        result = _make_backend(name).query(features, 3, include_self=True)
        assert np.array_equal(result[:, 0], np.arange(30))

    def test_rows_sorted_by_distance_then_index(self, name):
        features = _clustered_features(3, n=50)
        result = _make_backend(name).query(features, 6)
        for row in range(50):
            picked = result[row]
            distances = np.linalg.norm(features[picked] - features[row], axis=1)
            order = np.lexsort((picked, distances))
            assert np.array_equal(np.arange(6), order), f"row {row} not in contract order"

    def test_duplicate_points_tie_break(self, name):
        # All points identical: every distance ties at zero, so the
        # documented (distance, index) order makes the answer unique — the
        # k smallest indices other than the node itself.
        features = np.ones((12, 4))
        result = _make_backend(name).query(features, 3)
        assert np.array_equal(result, knn_indices_bruteforce(features, 3))
        assert np.array_equal(result[0], [1, 2, 3])
        assert np.array_equal(result[7], [0, 1, 2])

    # -- uniform validation ------------------------------------------------ #
    def test_k_nonpositive_raises_valueerror(self, name):
        features = _clustered_features(4, n=10)
        backend = _make_backend(name)
        with pytest.raises(ValueError):
            backend.query(features, 0)
        with pytest.raises(ValueError):
            backend.query(features, -2)

    def test_k_too_large_raises_valueerror(self, name):
        features = _clustered_features(5, n=8)
        backend = _make_backend(name)
        with pytest.raises(ValueError):
            backend.query(features, 8)  # k == n without include_self
        with pytest.raises(ValueError):
            backend.query(features, 9, include_self=True)

    def test_empty_features_raise_valueerror(self, name):
        backend = _make_backend(name)
        with pytest.raises(ValueError):
            backend.query(np.empty((0, 5)), 1)

    def test_non_2d_features_raise_shapeerror(self, name):
        backend = _make_backend(name)
        with pytest.raises(ShapeError):
            backend.query(np.arange(10.0), 2)
        with pytest.raises(ShapeError):
            backend.query(np.zeros((4, 3, 2)), 2)


# --------------------------------------------------------------------------- #
# Registry / resolution
# --------------------------------------------------------------------------- #
class TestRegistry:
    def test_builtins_registered(self):
        assert {"exact", "incremental", "lsh"} <= set(BACKENDS)

    def test_resolve_none_is_exact(self):
        backend = resolve_backend(None, block_size=64)
        assert isinstance(backend, ExactBackend)
        assert backend.block_size == 64

    def test_resolve_instance_passthrough(self):
        backend = IncrementalBackend()
        assert resolve_backend(backend) is backend

    def test_resolve_names_are_fresh_instances(self):
        assert resolve_backend("incremental") is not resolve_backend("incremental")

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError):
            resolve_backend("annoy")
        with pytest.raises(ConfigurationError):
            resolve_backend(123)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ConfigurationError):
            register_neighbor_backend("exact", ExactBackend)

    def test_cache_keys_distinguish_backends(self):
        keys = {_make_backend(name).cache_key() for name in BACKENDS}
        assert len(keys) == len(BACKENDS)

    def test_engine_folds_backend_into_dynamic_cache_key(self):
        """Dynamic (refreshed) topologies are backend-derived: structurally
        identical refresh results from different backends keep separate
        operator-cache entries — while backend-independent static requests
        stay shared across engines."""
        from repro.hypergraph.construction import knn_hyperedges

        features = _clustered_features(11, n=30)
        hypergraph = knn_hyperedges(features, 3)
        exact_engine = TopologyRefreshEngine(backend="exact")
        incremental_engine = TopologyRefreshEngine(
            cache=exact_engine.cache, backend="incremental"
        )
        first = exact_engine.refresh_operator(None, hypergraph)
        second = incremental_engine.refresh_operator(None, hypergraph)
        assert first is not second
        assert exact_engine.stats()["misses"] == 2
        # Static operators are a pure function of the fingerprinted topology
        # and stay shared regardless of the engine's backend.
        static = exact_engine.propagation_operator(hypergraph)
        assert incremental_engine.propagation_operator(hypergraph) is static

    def test_knn_indices_backend_thread_through(self):
        features = _clustered_features(12, n=40)
        assert np.array_equal(
            knn_indices(features, 4, backend="incremental"),
            knn_indices(features, 4),
        )


# --------------------------------------------------------------------------- #
# Exact backend: bit-identical to brute force
# --------------------------------------------------------------------------- #
class TestExactEquivalence:
    @given(
        seed=st.integers(0, 2**32 - 1),
        n=st.integers(2, 40),
        d=st.integers(1, 6),
        k_fraction=st.floats(0.0, 1.0),
        include_self=st.booleans(),
        tie_heavy=st.booleans(),
    )
    @settings(max_examples=80, deadline=None)
    def test_bit_identical_to_bruteforce(self, seed, n, d, k_fraction, include_self, tie_heavy):
        rng = np.random.default_rng(seed)
        if tie_heavy:
            features = rng.integers(0, 3, size=(n, d)).astype(np.float64)
        else:
            features = rng.normal(size=(n, d))
        limit = n if include_self else n - 1
        k = 1 + int(k_fraction * (limit - 1))
        assert np.array_equal(
            ExactBackend(block_size=7).query(features, k, include_self=include_self),
            knn_indices_bruteforce(features, k, include_self=include_self),
        )


# --------------------------------------------------------------------------- #
# Incremental backend: exact after arbitrary move sequences
# --------------------------------------------------------------------------- #
class TestIncrementalEquivalence:
    @given(
        seed=st.integers(0, 2**32 - 1),
        n=st.integers(4, 32),
        d=st.integers(1, 5),
        k=st.integers(1, 5),
        steps=st.lists(
            st.tuples(
                st.floats(0.0, 1.0),   # fraction of nodes moved
                st.floats(0.0, 2.0),   # movement scale (0 = no-op move)
                st.booleans(),         # snap to an integer grid (forces ties)
            ),
            min_size=1,
            max_size=5,
        ),
        include_self=st.booleans(),
    )
    @settings(max_examples=60, deadline=None)
    def test_bit_identical_over_move_sequences(self, seed, n, d, k, steps, include_self):
        rng = np.random.default_rng(seed)
        k = min(k, n if include_self else n - 1)
        features = rng.normal(size=(n, d))
        backend = IncrementalBackend(block_size=5)
        for fraction, scale, snap in steps:
            n_moved = int(round(fraction * n))
            if n_moved:
                moved = rng.choice(n, size=n_moved, replace=False)
                features = features.copy()
                features[moved] += rng.normal(scale=scale or 1e-12, size=(n_moved, d))
                if snap:
                    features[moved] = np.round(features[moved])
            assert np.array_equal(
                backend.query(features, k, include_self=include_self),
                knn_indices_bruteforce(features, k, include_self=include_self),
            ), f"diverged after moving {n_moved}/{n} nodes"

    def test_no_move_returns_cached_without_requery(self):
        features = _clustered_features(20, n=80)
        backend = IncrementalBackend()
        first = backend.query(features, 5)
        requeried = backend.rows_requeried
        second = backend.query(features.copy(), 5)
        assert np.array_equal(first, second)
        assert backend.rows_requeried == requeried
        assert backend.partial_refreshes == 0

    def test_small_move_requeries_partially(self):
        rng = np.random.default_rng(21)
        features = _clustered_features(21, n=200)
        backend = IncrementalBackend()
        backend.query(features, 6)
        features = features.copy()
        features[rng.choice(200, size=5, replace=False)] += rng.normal(
            scale=0.01, size=(5, features.shape[1])
        )
        result = backend.query(features, 6)
        assert np.array_equal(result, knn_indices_bruteforce(features, 6))
        assert backend.partial_refreshes == 1
        assert backend.rows_requeried < 200 + 200  # strictly fewer than 2 full passes

    def test_high_churn_falls_back_to_full_rebuild(self):
        rng = np.random.default_rng(22)
        features = _clustered_features(22, n=60)
        backend = IncrementalBackend(churn_threshold=0.2)
        backend.query(features, 4)
        features = features + rng.normal(scale=0.1, size=features.shape)  # 100% churn
        result = backend.query(features, 4)
        assert np.array_equal(result, knn_indices_bruteforce(features, 4))
        assert backend.full_rebuilds == 2
        assert backend.partial_refreshes == 0

    def test_churning_stream_recycles_its_own_state_slots(self):
        """A stream that rebuilds on every query (early training) must not
        fill the whole LRU with stale same-signature copies and evict other
        streams' live states."""
        rng = np.random.default_rng(29)
        churner = rng.normal(size=(40, 6))
        stable = rng.normal(size=(40, 12))
        backend = IncrementalBackend(churn_threshold=0.2)
        backend.query(stable, 4)
        for _ in range(10):  # 10 over-churn rebuilds of the same stream
            churner = churner + rng.normal(scale=1.0, size=churner.shape)
            backend.query(churner, 4)
        per_sig = IncrementalBackend.MAX_STATES_PER_SIGNATURE
        assert backend.stats()["states"] <= per_sig + 1
        # The stable stream's state survived: no rebuild, no requery.
        rebuilds = backend.full_rebuilds
        backend.query(stable, 4)
        assert backend.full_rebuilds == rebuilds

    def test_per_signature_states_do_not_thrash(self):
        """Per-layer query streams of different widths keep separate states
        (the pattern DHGCN/DHGNN produce with one shared backend)."""
        rng = np.random.default_rng(23)
        narrow = rng.normal(size=(50, 4))
        wide = rng.normal(size=(50, 16))
        backend = IncrementalBackend()
        backend.query(narrow, 3)
        backend.query(wide, 3)
        assert backend.full_rebuilds == 2
        # Unmoved re-queries of both streams stay cached.
        backend.query(narrow, 3)
        backend.query(wide, 3)
        assert backend.full_rebuilds == 2
        assert backend.partial_refreshes == 0
        assert backend.stats()["states"] == 2

    def test_same_width_streams_keep_separate_states(self):
        """Two alternating streams with IDENTICAL signatures (e.g. two
        equal-width hidden layers) must each track their own history via
        best-match selection, not thrash one slot into full rebuilds."""
        rng = np.random.default_rng(27)
        stream_a = rng.normal(size=(60, 8))
        stream_b = rng.normal(size=(60, 8))
        backend = IncrementalBackend()
        backend.query(stream_a, 4)
        backend.query(stream_b, 4)
        assert backend.full_rebuilds == 2
        assert backend.stats()["states"] == 2
        for _ in range(2):  # alternate with tiny per-stream drift
            for stream in (stream_a, stream_b):
                stream[rng.integers(0, 60)] += 0.01
                assert np.array_equal(
                    backend.query(stream, 4), knn_indices_bruteforce(stream, 4)
                )
        assert backend.full_rebuilds == 2, "same-width streams thrashed into rebuilds"
        assert backend.partial_refreshes == 4
        assert backend.stats()["states"] == 2

    def test_update_applies_explicit_move_hint(self):
        features = _clustered_features(24, n=60)
        backend = IncrementalBackend()
        backend.query(features, 4)
        features = features.copy()
        features[7] += 0.05
        mask = np.zeros(60, dtype=bool)
        mask[7] = True
        result = backend.update(mask, features)
        assert np.array_equal(result, knn_indices_bruteforce(features, 4))

    def test_update_before_query_rejected(self):
        backend = IncrementalBackend()
        with pytest.raises(ConfigurationError):
            backend.update(np.zeros(5, dtype=bool), np.zeros((5, 2)))

    def test_update_resolves_params_from_matching_stream(self):
        """update() must take k/include_self/metric from the cached stream
        matching the given features' shape — not from whichever stream
        happened to be queried last."""
        rng = np.random.default_rng(28)
        narrow = rng.normal(size=(40, 3))
        wide = rng.normal(size=(40, 9))
        backend = IncrementalBackend()
        backend.query(narrow, 3)
        backend.query(wide, 5)  # most recent query uses k=5
        narrow = narrow.copy()
        narrow[4] += 0.05
        mask = np.zeros(40, dtype=bool)
        mask[4] = True
        result = backend.update(mask, narrow)
        assert result.shape == (40, 3)  # narrow stream's k, not the last query's
        assert np.array_equal(result, knn_indices_bruteforce(narrow, 3))
        # No matching stream for a never-seen shape.
        with pytest.raises(ConfigurationError):
            backend.update(np.zeros(40, dtype=bool), rng.normal(size=(40, 7)))

    def test_stateless_backends_ignore_update(self):
        features = _clustered_features(25, n=20)
        assert ExactBackend().update(np.zeros(20, dtype=bool), features) is None
        assert LSHBackend().update(np.zeros(20, dtype=bool), features) is None

    def test_tolerance_skips_subtolerance_drift(self):
        features = _clustered_features(26, n=80)
        backend = IncrementalBackend(tolerance=1.0)
        first = backend.query(features, 5)
        drifted = features + 1e-4  # well under tolerance
        second = backend.query(drifted, 5)
        assert np.array_equal(first, second)
        assert backend.partial_refreshes == 0

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            IncrementalBackend(tolerance=-1.0)
        with pytest.raises(ConfigurationError):
            IncrementalBackend(churn_threshold=0.0)
        with pytest.raises(ConfigurationError):
            IncrementalBackend(churn_threshold=1.5)
        with pytest.raises(ConfigurationError):
            IncrementalBackend(max_states=0)


# --------------------------------------------------------------------------- #
# Incremental backend: online insertion (grow-and-repair) and persistence
# --------------------------------------------------------------------------- #
class TestIncrementalInsert:
    @given(
        seed=st.integers(0, 2**32 - 1),
        n=st.integers(6, 40),
        d=st.integers(1, 5),
        k=st.integers(1, 4),
        inserts=st.lists(st.integers(1, 4), min_size=1, max_size=3),
        tie_heavy=st.booleans(),
    )
    @settings(max_examples=60, deadline=None)
    def test_insert_then_query_bit_identical_to_exact(
        self, seed, n, d, k, inserts, tie_heavy
    ):
        rng = np.random.default_rng(seed)
        total = n + sum(inserts)
        if tie_heavy:
            features = rng.integers(0, 3, size=(total, d)).astype(np.float64)
        else:
            features = rng.normal(size=(total, d))
        if k >= n:
            k = n - 1
        backend = IncrementalBackend(block_size=5)
        backend.query(features[:n], k)
        count = n
        for grow in inserts:
            previous = count
            count += grow
            grown = backend.insert(features[:count])
            # Past the churn threshold the backend legitimately declines and
            # lets the next query rebuild; below it the grow must succeed.
            if grow <= backend.churn_threshold * count:
                assert grown is True, f"insert of {grow} rows onto {previous} declined"
            result = backend.query(features[:count], k)
            assert np.array_equal(result, knn_indices_bruteforce(features[:count], k))

    def test_insert_with_simultaneous_drift(self):
        rng = np.random.default_rng(11)
        features = _clustered_features(11, n=120)
        backend = IncrementalBackend()
        backend.query(features[:110], 6)
        drifted = features.copy()
        moved = rng.choice(110, 8, replace=False)
        drifted[moved] += rng.normal(scale=0.02, size=(8, features.shape[1]))
        assert backend.insert(drifted) is True
        result = backend.query(drifted, 6)
        assert np.array_equal(result, knn_indices_bruteforce(drifted, 6))

    def test_insert_without_state_returns_false(self):
        backend = IncrementalBackend()
        assert backend.insert(np.zeros((10, 3))) is False

    def test_insert_past_churn_threshold_drops_state(self):
        features = _clustered_features(12, n=100)
        backend = IncrementalBackend(churn_threshold=0.1)
        backend.query(features[:50], 4)
        # 50 new rows over 100 total is way past 10% churn.
        assert backend.insert(features) is False
        backend.query(features, 4)
        assert backend.full_rebuilds == 2  # initial + the post-drop rebuild

    def test_insert_counts_rows(self):
        features = _clustered_features(13, n=64)
        backend = IncrementalBackend()
        backend.query(features[:60], 4)
        backend.insert(features)
        assert backend.rows_inserted == 4
        assert backend.stats()["rows_inserted"] == 4

    def test_state_export_import_round_trip(self):
        features = _clustered_features(14, n=80)
        backend = IncrementalBackend()
        reference = backend.query(features, 5)
        states = backend.export_states()

        restored = IncrementalBackend()
        restored.import_states(states)
        assert restored.has_matching_state(features, 5)
        result = restored.query(features, 5)
        assert np.array_equal(result, reference)
        assert restored.full_rebuilds == 0  # served from the imported state

    def test_import_rejects_inconsistent_state(self):
        backend = IncrementalBackend()
        with pytest.raises(ConfigurationError):
            backend.import_states(
                [{"signature": (4, 2, "float64", 1, False, "euclidean"),
                  "features": np.zeros((3, 2)), "indices": np.zeros((4, 1), dtype=np.int64),
                  "distances": np.zeros((4, 1))}]
            )
        with pytest.raises(ConfigurationError):
            backend.import_states([{"signature": (1, 2, 3), "features": np.zeros((1, 2)),
                                    "indices": np.zeros((1, 1), dtype=np.int64),
                                    "distances": np.zeros((1, 1))}])

    def test_has_matching_state(self):
        features = _clustered_features(15, n=40)
        backend = IncrementalBackend()
        assert not backend.has_matching_state(features, 4)
        backend.query(features, 4)
        assert backend.has_matching_state(features, 4)
        assert not backend.has_matching_state(features, 3)
        assert not backend.has_matching_state(features + 1.0, 4)


# --------------------------------------------------------------------------- #
# IncrementalBackend.delete: the O(r·n) shrink-and-repair
# --------------------------------------------------------------------------- #
class TestIncrementalDelete:
    @given(
        seed=st.integers(0, 2**32 - 1),
        n=st.integers(8, 40),
        d=st.integers(1, 5),
        k=st.integers(1, 4),
        deletions=st.lists(st.integers(1, 3), min_size=1, max_size=3),
        tie_heavy=st.booleans(),
    )
    @settings(max_examples=60, deadline=None)
    def test_delete_then_query_bit_identical_to_exact(
        self, seed, n, d, k, deletions, tie_heavy
    ):
        rng = np.random.default_rng(seed)
        if tie_heavy:
            features = rng.integers(0, 3, size=(n, d)).astype(np.float64)
        else:
            features = rng.normal(size=(n, d))
        if k >= n:
            k = n - 1
        backend = IncrementalBackend(block_size=5)
        backend.query(features, k)
        for remove in deletions:
            count = features.shape[0]
            if count - remove <= k + 1:
                break  # k would become infeasible for the survivors
            keep = np.ones(count, dtype=bool)
            keep[rng.choice(count, remove, replace=False)] = False
            shrunk = backend.delete(keep)
            # Past the churn threshold the backend legitimately declines and
            # lets the next query rebuild; below it the shrink must succeed.
            if remove <= backend.churn_threshold * count:
                assert shrunk == 1, f"delete of {remove}/{count} rows declined"
            features = features[keep]
            result = backend.query(features, k)
            assert np.array_equal(result, knn_indices_bruteforce(features, k))

    def test_delete_requeries_only_rows_that_listed_a_deleted_node(self):
        features = _clustered_features(20, n=200)
        backend = IncrementalBackend()
        reference = backend.query(features, 5)
        keep = np.ones(200, dtype=bool)
        keep[[3, 90]] = False
        affected = np.flatnonzero((~keep[reference]).any(axis=1) & keep)
        requeried_before = backend.rows_requeried
        assert backend.delete(keep) == 1
        assert backend.rows_requeried - requeried_before == affected.size
        # The follow-up query is a pure cache read: no movers, no re-queries.
        requeried_before = backend.rows_requeried
        result = backend.query(features[keep], 5)
        assert backend.rows_requeried == requeried_before
        assert np.array_equal(result, knn_indices_bruteforce(features[keep], 5))

    def test_delete_with_simultaneous_drift(self):
        rng = np.random.default_rng(21)
        features = _clustered_features(21, n=120)
        backend = IncrementalBackend()
        backend.query(features, 6)
        keep = np.ones(120, dtype=bool)
        keep[rng.choice(120, 5, replace=False)] = False
        assert backend.delete(keep) == 1
        drifted = features[keep].copy()
        moved = rng.choice(drifted.shape[0], 8, replace=False)
        drifted[moved] += rng.normal(scale=0.02, size=(8, features.shape[1]))
        result = backend.query(drifted, 6)
        assert np.array_equal(result, knn_indices_bruteforce(drifted, 6))

    def test_delete_float32_drops_state_and_matches_exact(self):
        # The float32 kernel mean-centres, so removing points perturbs every
        # stored distance value; float32 states are dropped (not repaired)
        # and the follow-up full rebuild is bit-identical to exact — even on
        # tie-heavy integer features where near-ties reorder wholesale.
        rng = np.random.default_rng(22)
        features = rng.integers(0, 3, size=(150, 12)).astype(np.float32)
        backend = IncrementalBackend()
        backend.query(features, 5)
        keep = np.ones(150, dtype=bool)
        keep[[0, 70, 149]] = False
        assert backend.delete(keep) == 0
        assert backend.stats()["states"] == 0
        result = backend.query(features[keep], 5)
        assert np.array_equal(result, ExactBackend().query(features[keep], 5))

    def test_delete_shrinks_every_matching_stream(self):
        # Two same-length streams of different width (the per-layer embedding
        # streams of a serving session) shrink together.
        rng = np.random.default_rng(23)
        first = rng.normal(size=(80, 4))
        second = rng.normal(size=(80, 9))
        backend = IncrementalBackend()
        backend.query(first, 5)
        backend.query(second, 3)
        keep = np.ones(80, dtype=bool)
        keep[[7, 40]] = False
        assert backend.delete(keep) == 2
        assert np.array_equal(
            backend.query(first[keep], 5), knn_indices_bruteforce(first[keep], 5)
        )
        assert np.array_equal(
            backend.query(second[keep], 3), knn_indices_bruteforce(second[keep], 3)
        )
        assert backend.full_rebuilds == 2  # only the two initial queries

    def test_delete_past_churn_threshold_drops_state(self):
        features = _clustered_features(24, n=100)
        backend = IncrementalBackend(churn_threshold=0.1)
        backend.query(features, 4)
        keep = np.ones(100, dtype=bool)
        keep[:20] = False  # 20% deleted, way past 10% churn
        assert backend.delete(keep) == 0
        assert backend.stats()["states"] == 0
        backend.query(features[keep], 4)
        assert backend.full_rebuilds == 2  # initial + the post-drop rebuild

    def test_delete_drops_state_when_k_becomes_infeasible(self):
        features = _clustered_features(25, n=12)
        backend = IncrementalBackend(churn_threshold=1.0)
        backend.query(features, 9)
        keep = np.ones(12, dtype=bool)
        keep[[0, 5, 11]] = False  # 9 survivors cannot answer k=9
        assert backend.delete(keep) == 0
        assert backend.stats()["states"] == 0

    def test_delete_counts_rows(self):
        features = _clustered_features(26, n=64)
        backend = IncrementalBackend()
        backend.query(features, 4)
        keep = np.ones(64, dtype=bool)
        keep[[1, 2, 3]] = False
        backend.delete(keep)
        assert backend.rows_deleted == 3
        assert backend.stats()["rows_deleted"] == 3

    def test_delete_ignores_other_lengths_and_full_keep(self):
        features = _clustered_features(27, n=50)
        backend = IncrementalBackend()
        backend.query(features, 4)
        assert backend.delete(np.ones(50, dtype=bool)) == 0  # nothing removed
        keep = np.ones(30, dtype=bool)
        keep[0] = False
        assert backend.delete(keep) == 0  # no state has 30 rows
        assert backend.stats()["states"] == 1

    def test_delete_validates_mask_shape(self):
        backend = IncrementalBackend()
        with pytest.raises(ShapeError):
            backend.delete(np.ones((4, 2), dtype=bool))

    def test_stateless_backends_ignore_delete(self):
        keep = np.ones(10, dtype=bool)
        keep[0] = False
        assert ExactBackend().delete(keep) == 0
        assert LSHBackend().delete(keep) == 0

    def test_interleaved_insert_delete_matches_exact(self):
        rng = np.random.default_rng(28)
        pool = _clustered_features(28, n=160)
        features = pool[:120]
        backend = IncrementalBackend()
        backend.query(features, 5)
        cursor = 120
        for step in range(6):
            if step % 2 == 0:
                grow = pool[cursor : cursor + 4]
                cursor += 4
                features = np.vstack([features, grow])
                backend.insert(features)
            else:
                keep = np.ones(features.shape[0], dtype=bool)
                keep[rng.choice(features.shape[0], 3, replace=False)] = False
                backend.delete(keep)
                features = features[keep]
            result = backend.query(features, 5)
            assert np.array_equal(result, knn_indices_bruteforce(features, 5))


# --------------------------------------------------------------------------- #
# LSH backend: recall floor, determinism, the recall knob
# --------------------------------------------------------------------------- #
class TestLSHBackend:
    RECALL_FLOOR = 0.9

    def test_recall_floor_on_clustered_data(self):
        features = _clustered_features(30, n=400, d=16, n_clusters=8)
        backend = LSHBackend(seed=0)
        recall = backend.measured_recall(features, 8)
        assert recall >= self.RECALL_FLOOR, f"recall {recall:.3f} below floor"

    def test_deterministic_given_seed(self):
        features = _clustered_features(31, n=150, d=10)
        assert np.array_equal(
            LSHBackend(seed=3).query(features, 6),
            LSHBackend(seed=3).query(features, 6),
        )

    def test_tune_reaches_target(self):
        features = _clustered_features(32, n=300, d=12)
        backend = LSHBackend(n_tables=1, n_probes=0, seed=1)
        recall = backend.tune(features, 8, target_recall=0.9)
        assert recall >= 0.9
        assert recall == pytest.approx(backend.measured_recall(features, 8))

    def test_small_candidate_pools_fall_back_to_exact_rows(self):
        # One table, many bits: buckets are tiny, so most rows must take the
        # exact fallback — and the result is then exact for those rows.
        features = _clustered_features(33, n=60, d=8)
        backend = LSHBackend(n_tables=1, hash_bits=16, n_probes=0, seed=2)
        result = backend.query(features, 5)
        fallback = backend.last_fallback_row_ids
        assert backend.fallback_rows == fallback.size > 0
        reference = knn_indices_bruteforce(features, 5)
        # every fallback row, specifically, is bit-identical to exact
        assert np.array_equal(result[fallback], reference[fallback])

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            LSHBackend(n_tables=0)
        with pytest.raises(ConfigurationError):
            LSHBackend(hash_bits=0)
        with pytest.raises(ConfigurationError):
            LSHBackend(n_probes=-1)
        with pytest.raises(ConfigurationError):
            LSHBackend().tune(np.zeros((4, 2)), 1, target_recall=0.0)


# --------------------------------------------------------------------------- #
# clamp_k: small-population queries (every backend)
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("name", BACKENDS)
class TestClampK:
    """After heavy deletion a population (or a shard) routinely drops below
    ``k + 1`` rows; ``clamp_k=True`` degrades to "every survivor is a
    neighbour" instead of raising, without touching the strict default."""

    def test_clamped_query_equals_exact_at_feasible_k(self, name):
        features = _clustered_features(40, n=8)
        result = _make_backend(name).query(features, 20, clamp_k=True)
        assert result.shape == (8, 7)
        assert np.array_equal(result, knn_indices_bruteforce(features, 7))

    def test_clamped_include_self_caps_at_population(self, name):
        features = _clustered_features(41, n=6)
        result = _make_backend(name).query(features, 99, include_self=True, clamp_k=True)
        assert result.shape == (6, 6)
        assert np.array_equal(
            result, knn_indices_bruteforce(features, 6, include_self=True)
        )

    def test_feasible_k_unaffected_by_clamp(self, name):
        features = _clustered_features(42, n=30)
        assert np.array_equal(
            _make_backend(name).query(features, 5, clamp_k=True),
            knn_indices_bruteforce(features, 5),
        )

    def test_no_feasible_neighbour_still_raises(self, name):
        backend = _make_backend(name)
        with pytest.raises(ValueError):
            backend.query(np.zeros((1, 3)), 1, clamp_k=True)
        with pytest.raises(ValueError):
            backend.query(np.zeros((0, 3)), 1, clamp_k=True)

    def test_strict_default_still_raises(self, name):
        features = _clustered_features(43, n=8)
        with pytest.raises(ValueError):
            _make_backend(name).query(features, 8)

    def test_delete_below_k_plus_one_then_refresh_and_insert(self, name):
        # The satellite scenario: delete down to fewer than k + 1 survivors,
        # then keep querying (refresh) and grow again — with clamp_k the
        # stream never crashes and every answer stays bit-identical to the
        # exact kernel at the clamped k.
        features = _clustered_features(44, n=24, d=6)
        backend = _make_backend(name)
        k = 5
        backend.query(features, k, clamp_k=True)
        survivors = features[:4]  # 4 alive < k + 1
        result = backend.query(survivors, k, clamp_k=True)
        assert np.array_equal(result, knn_indices_bruteforce(survivors, 3))
        grown = np.vstack([survivors, _clustered_features(45, n=12, d=6)])
        result = backend.query(grown, k, clamp_k=True)
        assert np.array_equal(result, knn_indices_bruteforce(grown, k))


# --------------------------------------------------------------------------- #
# ShardedBackend: cross-shard merge bit-identity
# --------------------------------------------------------------------------- #
class TestShardedBackend:
    """The sharded backend is *exact*: per-shard top-t merged by the
    documented (distance, id) tie-break must be bit-identical to brute force
    for any shard count, through every lifecycle path."""

    @pytest.mark.parametrize("n_shards", [1, 2, 4])
    def test_query_bit_identical_to_exact(self, n_shards):
        from repro.hypergraph import ShardedBackend

        features = _clustered_features(50, n=120, d=8)
        backend = ShardedBackend(n_shards=n_shards)
        assert np.array_equal(
            backend.query(features, 6), knn_indices_bruteforce(features, 6)
        )
        assert np.array_equal(
            backend.query(features, 6, include_self=True),
            knn_indices_bruteforce(features, 6, include_self=True),
        )

    @pytest.mark.parametrize("n_shards", [1, 2, 4])
    def test_lifecycle_bit_identical_to_exact(self, n_shards):
        # Move, insert and delete in sequence; every intermediate answer
        # must match brute force on the current node set.
        from repro.hypergraph import ShardedBackend

        rng = np.random.default_rng(51)
        features = _clustered_features(51, n=90, d=7)
        backend = ShardedBackend(n_shards=n_shards)
        k = 5
        assert np.array_equal(
            backend.query(features, k), knn_indices_bruteforce(features, k)
        )
        # scoped mover repair
        moved = features.copy()
        movers = rng.choice(90, size=6, replace=False)
        moved[movers] += rng.normal(scale=0.3, size=(6, 7))
        assert np.array_equal(
            backend.query(moved, k), knn_indices_bruteforce(moved, k)
        )
        # grow-and-repair
        grown = np.vstack([moved, rng.normal(scale=4.0, size=(12, 7))])
        assert backend.insert(grown)
        assert np.array_equal(
            backend.query(grown, k), knn_indices_bruteforce(grown, k)
        )
        # shrink-and-repair
        keep = np.ones(grown.shape[0], dtype=bool)
        keep[rng.choice(grown.shape[0], size=10, replace=False)] = False
        assert backend.delete(keep) == 1
        shrunk = grown[keep]
        assert np.array_equal(
            backend.query(shrunk, k), knn_indices_bruteforce(shrunk, k)
        )

    def test_duplicate_points_across_shards_tie_break(self):
        # Identical points land in one k-means cell, but force them across
        # shards via an explicit map: the merge must still produce the
        # documented unique (distance, id) order when every distance ties.
        from repro.hypergraph import ShardedBackend, ShardMap

        features = np.ones((12, 4))
        shard_map = ShardMap(
            np.arange(12, dtype=np.int64) % 3, np.ones((3, 4), dtype=np.float64)
        )
        backend = ShardedBackend(n_shards=3, shard_map=shard_map)
        assert np.array_equal(
            backend.query(features, 3), knn_indices_bruteforce(features, 3)
        )

    def test_partition_independence(self):
        # Different seeds produce different partitions; answers must not move.
        from repro.hypergraph import ShardedBackend

        features = _clustered_features(52, n=100, d=6)
        results = [
            ShardedBackend(n_shards=4, seed=seed).query(features, 7)
            for seed in (0, 1, 2)
        ]
        assert np.array_equal(results[0], results[1])
        assert np.array_equal(results[0], results[2])

    def test_rebalance_never_changes_answers(self):
        from repro.hypergraph import ShardedBackend, make_shard_map

        features = _clustered_features(53, n=80, d=6)
        backend = ShardedBackend(n_shards=2)
        before = backend.query(features, 5)
        backend.set_shard_map(make_shard_map(features, 7, seed=9))
        after = backend.query(features, 5)
        assert np.array_equal(before, after)
        assert backend.rebalances == 1

    def test_more_shards_than_feasible_population(self):
        # Shard populations smaller than k + 1: per-shard t clamps to |s|
        # and the merge still recovers the global top-k.
        from repro.hypergraph import ShardedBackend

        features = _clustered_features(54, n=20, d=5)
        backend = ShardedBackend(n_shards=8)
        assert np.array_equal(
            backend.query(features, 6), knn_indices_bruteforce(features, 6)
        )

    def test_scoped_repair_touches_fewer_rows_than_rebuild(self):
        from repro.hypergraph import ShardedBackend

        features = _clustered_features(55, n=200, d=8)
        backend = ShardedBackend(n_shards=4)
        backend.query(features, 5)
        baseline = backend.rows_requeried
        moved = features.copy()
        moved[3] += 0.05
        backend.query(moved, 5)
        assert backend.partial_refreshes == 1
        assert backend.full_rebuilds == 1
        assert 0 < backend.rows_requeried - baseline < 200

    def test_export_import_clone_round_trip(self):
        from repro.hypergraph import ShardedBackend

        features = _clustered_features(56, n=60, d=6)
        backend = ShardedBackend(n_shards=3)
        expected = backend.query(features, 4)
        twin = backend.clone()
        assert np.array_equal(twin.query(features, 4), expected)
        assert twin.full_rebuilds == 0  # served from the cloned state
        other = ShardedBackend(n_shards=3)
        other.import_states(backend.export_states())
        assert np.array_equal(other.query(features, 4), expected)
        assert other.full_rebuilds == 0

    def test_float32_served_exactly_without_states(self):
        # float32 kernel values depend on operand centring, so sharded slabs
        # are not substitution-safe; the query must fall back to the exact
        # full kernel and keep no sharded state.
        from repro.hypergraph import ShardedBackend

        features = _clustered_features(57, n=40, d=6).astype(np.float32)
        backend = ShardedBackend(n_shards=4)
        assert np.array_equal(
            backend.query(features, 5), knn_indices_bruteforce(features, 5)
        )
        assert backend.stats()["states"] == 0
        assert not backend.insert(features)

    def test_update_with_mover_hint(self):
        from repro.hypergraph import ShardedBackend

        features = _clustered_features(58, n=70, d=6)
        backend = ShardedBackend(n_shards=2)
        backend.query(features, 4)
        moved = features.copy()
        moved[10] += 0.2
        mask = np.zeros(70, dtype=bool)
        mask[10] = True
        assert np.array_equal(
            backend.update(mask, moved), knn_indices_bruteforce(moved, 4)
        )
        with pytest.raises(ConfigurationError):
            ShardedBackend().update(mask, moved)

    def test_delete_drops_state_when_k_becomes_infeasible(self):
        from repro.hypergraph import ShardedBackend

        features = _clustered_features(59, n=30, d=5)
        backend = ShardedBackend(n_shards=2, churn_threshold=1.0)
        backend.query(features, 5)
        keep = np.zeros(30, dtype=bool)
        keep[:4] = True  # 4 survivors < k + 1: state must be dropped
        assert backend.delete(keep) == 0
        assert backend.stats()["states"] == 0
        survivors = features[:4]
        assert np.array_equal(
            backend.query(survivors, 5, clamp_k=True),
            knn_indices_bruteforce(survivors, 3),
        )

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 50),
        n_shards=st.integers(1, 5),
        k=st.integers(1, 8),
    )
    def test_property_query_matches_bruteforce(self, seed, n_shards, k):
        from repro.hypergraph import ShardedBackend

        features = _clustered_features(seed, n=40, d=5, n_clusters=4)
        backend = ShardedBackend(n_shards=n_shards, seed=seed)
        assert np.array_equal(
            backend.query(features, k), knn_indices_bruteforce(features, k)
        )

    def test_invalid_parameters(self):
        from repro.hypergraph import ShardedBackend, ShardMap, make_shard_map

        with pytest.raises(ConfigurationError):
            ShardedBackend(n_shards=0)
        with pytest.raises(ConfigurationError):
            ShardedBackend(churn_threshold=0.0)
        with pytest.raises(ConfigurationError):
            ShardedBackend(max_states=0)
        with pytest.raises(ConfigurationError):
            ShardedBackend(workers=0)
        with pytest.raises(ShapeError):
            ShardMap(np.zeros((2, 2)), np.zeros((1, 3)))
        with pytest.raises(ConfigurationError):
            ShardMap(np.array([0, 5]), np.zeros((2, 3)))
        with pytest.raises(ConfigurationError):
            make_shard_map(np.zeros((4, 2)), 0)
        with pytest.raises(ValueError):
            make_shard_map(np.zeros((0, 2)), 2)

    def test_shard_map_meta_round_trip(self):
        from repro.hypergraph import ShardMap, make_shard_map

        features = _clustered_features(60, n=50, d=6)
        shard_map = make_shard_map(features, 4, seed=2)
        restored = ShardMap.from_meta(shard_map.to_meta())
        assert np.array_equal(restored.assignment, shard_map.assignment)
        assert np.array_equal(restored.centroids, shard_map.centroids)
        assert restored.n_shards == shard_map.n_shards
        assert int(restored.sizes().sum()) == 50


# --------------------------------------------------------------------------- #
# Golden training regressions
# --------------------------------------------------------------------------- #
def _train_dhgnn(dataset, backend: str | None, epochs: int = 6):
    reset_default_engine()
    model = DHGNN(
        dataset.n_features,
        dataset.n_classes,
        refresh_period=2,
        seed=0,
        neighbor_backend=backend,
    )
    config = TrainConfig(epochs=epochs, lr=0.01, eval_every=1, patience=None)
    return Trainer(model, dataset, config).train()


class TestGoldenTrainingRegression:
    def test_incremental_training_identical_to_exact(self, tiny_object_dataset):
        exact = _train_dhgnn(tiny_object_dataset, "exact")
        incremental = _train_dhgnn(tiny_object_dataset, "incremental")
        for key in ("train_loss", "train_accuracy", "val_accuracy", "test_accuracy"):
            assert exact.history[key] == incremental.history[key], key
        assert exact.test_accuracy == incremental.test_accuracy
        # identical cache traffic, request for request
        exact_stats = exact.extras["operator_cache"]
        incremental_stats = incremental.extras["operator_cache"]
        for counter in ("hits", "misses", "evictions", "entries"):
            assert exact_stats[counter] == incremental_stats[counter], counter

    def test_backend_via_train_config_equals_model_kwarg(self, tiny_object_dataset):
        reset_default_engine()
        model = DHGNN(
            tiny_object_dataset.n_features,
            tiny_object_dataset.n_classes,
            refresh_period=2,
            seed=0,
        )
        config = TrainConfig(
            epochs=6, lr=0.01, eval_every=1, patience=None, neighbor_backend="incremental"
        )
        via_config = Trainer(model, tiny_object_dataset, config).train()
        via_kwarg = _train_dhgnn(tiny_object_dataset, "incremental")
        assert via_config.history["train_loss"] == via_kwarg.history["train_loss"]
        assert isinstance(model.refresh_engine.backend, IncrementalBackend)

    def test_lsh_training_converges_within_tolerance(self, tiny_object_dataset):
        exact = _train_dhgnn(tiny_object_dataset, "exact", epochs=10)
        lsh = _train_dhgnn(tiny_object_dataset, "lsh", epochs=10)
        assert all(np.isfinite(lsh.history["train_loss"]))
        # Approximate neighbours may perturb the topology, but training must
        # still converge to a comparable optimum on the synthetic benchmark.
        assert lsh.history["train_accuracy"][-1] >= 0.8 * exact.history["train_accuracy"][-1]
        assert lsh.test_accuracy >= exact.test_accuracy - 0.15

    def test_train_config_validates_backend_name(self):
        with pytest.raises(ConfigurationError):
            TrainConfig(neighbor_backend="faiss")

    def test_configs_accept_backend_instances(self, tiny_object_dataset):
        """Configured instances (the tolerance knob) work through both
        DHGCNConfig and TrainConfig, not just registry names."""
        from repro.core import DHGCN, DHGCNConfig

        tuned = IncrementalBackend(tolerance=0.5)
        config = DHGCNConfig(refresh_period=2, neighbor_backend=tuned)
        model = DHGCN(
            tiny_object_dataset.n_features, tiny_object_dataset.n_classes, config, seed=0
        )
        assert model.refresh_engine.backend is tuned
        assert TrainConfig(neighbor_backend=IncrementalBackend(tolerance=0.1)) is not None
        with pytest.raises(ConfigurationError):
            DHGCNConfig(neighbor_backend="faiss")
