"""Tests for the additional baselines: SGC, ChebNet and HGNN+."""

import numpy as np
import pytest

from repro.autograd import Tensor, cross_entropy
from repro.errors import ConfigurationError, TrainingError
from repro.models import HGNNP, SGC, ChebNet
from repro.models.chebnet import ChebConv
from repro.training import TrainConfig, Trainer

EXTRA_MODELS = [SGC, ChebNet, HGNNP]


class TestCommonInterface:
    @pytest.mark.parametrize("model_class", EXTRA_MODELS)
    def test_forward_shape(self, model_class, tiny_citation_dataset):
        dataset = tiny_citation_dataset
        model = model_class(dataset.n_features, dataset.n_classes, seed=0).setup(dataset)
        logits = model(Tensor(dataset.features))
        assert logits.shape == (dataset.n_nodes, dataset.n_classes)
        assert np.all(np.isfinite(logits.data))

    @pytest.mark.parametrize("model_class", EXTRA_MODELS)
    def test_forward_before_setup_raises(self, model_class, tiny_citation_dataset):
        dataset = tiny_citation_dataset
        model = model_class(dataset.n_features, dataset.n_classes, seed=0)
        with pytest.raises(TrainingError):
            model(Tensor(dataset.features))

    @pytest.mark.parametrize("model_class", EXTRA_MODELS)
    def test_gradients_reach_parameters(self, model_class, tiny_citation_dataset):
        dataset = tiny_citation_dataset
        model = model_class(dataset.n_features, dataset.n_classes, seed=0).setup(dataset)
        model.train()
        loss = cross_entropy(model(Tensor(dataset.features)), dataset.labels, dataset.split.train)
        loss.backward()
        for name, parameter in model.named_parameters():
            assert parameter.grad is not None, f"no gradient for {name}"

    @pytest.mark.parametrize("model_class", EXTRA_MODELS)
    def test_trains_above_chance(self, model_class, tiny_citation_dataset):
        dataset = tiny_citation_dataset
        model = model_class(dataset.n_features, dataset.n_classes, seed=0)
        result = Trainer(model, dataset, TrainConfig(epochs=30, patience=None)).train()
        chance = 1.0 / dataset.n_classes
        assert result.test_accuracy > chance + 0.1

    @pytest.mark.parametrize("model_class", EXTRA_MODELS)
    def test_feature_only_dataset(self, model_class, tiny_object_dataset):
        dataset = tiny_object_dataset
        model = model_class(dataset.n_features, dataset.n_classes, seed=0).setup(dataset)
        assert model(Tensor(dataset.features)).shape == (dataset.n_nodes, dataset.n_classes)


class TestSGC:
    def test_smoothing_precomputed_at_setup(self, tiny_citation_dataset):
        dataset = tiny_citation_dataset
        model = SGC(dataset.n_features, dataset.n_classes, k_hops=2, seed=0).setup(dataset)
        assert model._smoothed.shape == dataset.features.shape
        assert not np.allclose(model._smoothed, dataset.features)

    def test_more_hops_smooth_more(self, tiny_citation_dataset):
        dataset = tiny_citation_dataset
        one = SGC(dataset.n_features, dataset.n_classes, k_hops=1, seed=0).setup(dataset)
        four = SGC(dataset.n_features, dataset.n_classes, k_hops=4, seed=0).setup(dataset)
        # Smoothing reduces the variance of features across nodes.
        assert four._smoothed.var() < one._smoothed.var()

    def test_parameter_count_is_linear_model(self, tiny_citation_dataset):
        dataset = tiny_citation_dataset
        model = SGC(dataset.n_features, dataset.n_classes, seed=0)
        assert model.num_parameters() == dataset.n_features * dataset.n_classes + dataset.n_classes

    def test_invalid_hops(self):
        with pytest.raises(ConfigurationError):
            SGC(10, 3, k_hops=0)


class TestChebNet:
    def test_chebconv_order_one_is_linear(self, tiny_citation_dataset):
        dataset = tiny_citation_dataset
        layer = ChebConv(dataset.n_features, 4, k=1, seed=0)
        import scipy.sparse as sp

        out = layer(Tensor(dataset.features), sp.eye(dataset.n_nodes))
        assert out.shape == (dataset.n_nodes, 4)

    def test_invalid_order(self):
        with pytest.raises(ConfigurationError):
            ChebConv(4, 2, k=0)

    def test_higher_order_uses_more_parameters(self):
        assert ChebNet(20, 3, k=3).num_parameters() > ChebNet(20, 3, k=2).num_parameters()


class TestHGNNP:
    def test_isolated_nodes_keep_their_features(self):
        import numpy as np

        from repro.data.dataset import NodeClassificationDataset, Split
        from repro.hypergraph import Hypergraph

        features = np.eye(6)
        labels = np.array([0, 0, 1, 1, 0, 1])
        # Node 5 is isolated (in no hyperedge).
        hypergraph = Hypergraph(6, [[0, 1, 2], [2, 3, 4]])
        dataset = NodeClassificationDataset(
            name="toy",
            features=features,
            labels=labels,
            hypergraph=hypergraph,
            split=Split(train=np.array([0, 2]), val=np.array([1, 3]), test=np.array([4, 5])),
        )
        model = HGNNP(6, 2, hidden_dim=4, n_layers=1, dropout=0.0, seed=0).setup(dataset)
        model.eval()
        logits = model(Tensor(features)).data
        # The isolated node's logits equal its own transformed features,
        # i.e. the row of the weight matrix for feature 5 (plus bias).
        layer = model.layers[0]
        expected = features[5] @ layer.weight.data + layer.bias.data
        assert np.allclose(logits[5], expected)

    def test_empty_hypergraph_degenerates_to_identity_propagation(self, tiny_object_dataset):
        dataset = tiny_object_dataset.with_hypergraph(
            __import__("repro.hypergraph", fromlist=["Hypergraph"]).Hypergraph.empty(
                tiny_object_dataset.n_nodes
            )
        )
        model = HGNNP(dataset.n_features, dataset.n_classes, seed=0).setup(dataset)
        assert model(Tensor(dataset.features)).shape == (dataset.n_nodes, dataset.n_classes)

    def test_invalid_layers(self):
        with pytest.raises(ConfigurationError):
            HGNNP(10, 2, n_layers=0)
