"""Tests for the grid-search helper and the command-line interface."""

import numpy as np
import pytest

from repro.cli import MODEL_REGISTRY, build_parser, main
from repro.core import DHGCN, DHGCNConfig
from repro.models import MLP
from repro.training import TrainConfig, grid_search, parameter_grid
from repro.training.tuning import GridSearchResult


class TestParameterGrid:
    def test_expansion(self):
        grid = parameter_grid({"a": [1, 2], "b": ["x"]})
        assert grid == [{"a": 1, "b": "x"}, {"a": 2, "b": "x"}]

    def test_single_point(self):
        assert parameter_grid({"a": [5]}) == [{"a": 5}]

    def test_empty_grid_rejected(self):
        with pytest.raises(ValueError):
            parameter_grid({})


class TestGridSearch:
    def test_finds_reasonable_configuration(self, tiny_citation_dataset):
        dataset = tiny_citation_dataset

        def factory(ds, seed, hidden_dim):
            return MLP(ds.n_features, ds.n_classes, hidden_dim=hidden_dim, seed=seed)

        result = grid_search(
            factory,
            dataset,
            {"hidden_dim": [4, 16]},
            n_seeds=1,
            train_config=TrainConfig(epochs=5, patience=None),
        )
        assert len(result.entries) == 2
        assert set(result.best_parameters) == {"hidden_dim"}
        assert 0.0 <= result.best["mean_test_accuracy"] <= 1.0
        table = result.to_table(title="search")
        assert "hidden_dim" in table.columns
        assert len(table) == 2

    def test_with_dhgcn_configuration(self, tiny_citation_dataset):
        dataset = tiny_citation_dataset

        def factory(ds, seed, k_neighbors):
            config = DHGCNConfig(hidden_dim=8, k_neighbors=k_neighbors)
            return DHGCN(ds.n_features, ds.n_classes, config, seed=seed)

        result = grid_search(
            factory,
            dataset,
            {"k_neighbors": [2, 4]},
            n_seeds=1,
            train_config=TrainConfig(epochs=4, patience=None),
        )
        assert {entry["parameters"]["k_neighbors"] for entry in result.entries} == {2, 4}

    def test_empty_result_errors(self):
        result = GridSearchResult()
        with pytest.raises(ValueError):
            _ = result.best
        with pytest.raises(ValueError):
            result.to_table()


class TestCli:
    def test_registry_covers_all_major_models(self):
        for name in ("mlp", "gcn", "gat", "hgnn", "hypergcn", "dhgnn", "dhgcn", "sgc", "chebnet", "hgnnp"):
            assert name in MODEL_REGISTRY

    def test_parser_rejects_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["unknown"])

    def test_datasets_command(self, capsys):
        assert main(["datasets"]) == 0
        output = capsys.readouterr().out
        assert "cora-cocitation" in output
        assert "ntu2012" in output

    def test_train_command(self, capsys):
        code = main(
            [
                "train",
                "--dataset", "cora-cocitation",
                "--model", "hgnn",
                "--epochs", "5",
                "--nodes", "280",
                "--patience", "0",
                "--seed", "1",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "test accuracy" in output
        accuracy = float(
            [line for line in output.splitlines() if line.startswith("test accuracy")][0]
            .split(":")[1]
        )
        assert 0.0 <= accuracy <= 1.0

    def test_compare_command(self, capsys):
        code = main(
            [
                "compare",
                "--datasets", "cora-cocitation",
                "--models", "mlp", "hgnn",
                "--seeds", "1",
                "--epochs", "5",
                "--nodes", "280",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "| method |" in output
        assert "mlp" in output and "hgnn" in output

    def test_train_command_with_dhgcn(self, capsys):
        code = main(
            [
                "train",
                "--dataset", "cora-coauthorship",
                "--model", "dhgcn",
                "--epochs", "4",
                "--nodes", "200",
                "--hidden-dim", "8",
            ]
        )
        assert code == 0
        assert "dhgcn" in capsys.readouterr().out
