"""Tests for the Hypergraph data structure and its Laplacian/operators."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.errors import HypergraphStructureError
from repro.hypergraph import (
    Hypergraph,
    hypergraph_laplacian,
    hypergraph_propagation_operator,
)
from repro.hypergraph.laplacian import compactness_hyperedge_weights


@pytest.fixture()
def small_hypergraph():
    return Hypergraph(6, [[0, 1, 2], [2, 3], [3, 4, 5], [0, 5]])


class TestHypergraphStructure:
    def test_basic_counts(self, small_hypergraph):
        assert small_hypergraph.n_nodes == 6
        assert small_hypergraph.n_hyperedges == 4
        assert np.array_equal(small_hypergraph.hyperedge_sizes(), [3, 2, 3, 2])

    def test_duplicate_nodes_in_hyperedge_removed(self):
        hypergraph = Hypergraph(4, [[0, 0, 1]])
        assert hypergraph.hyperedges == ((0, 1),)

    def test_empty_hyperedge_rejected(self):
        with pytest.raises(HypergraphStructureError):
            Hypergraph(3, [[]])

    def test_out_of_range_node_rejected(self):
        with pytest.raises(HypergraphStructureError):
            Hypergraph(3, [[0, 7]])
        with pytest.raises(HypergraphStructureError):
            Hypergraph(0, [])

    def test_accessors_are_cached_readonly_views(self, small_hypergraph):
        # .weights returns the same read-only array every time (no per-access
        # copy), and writing through it is rejected.
        weights = small_hypergraph.weights
        assert weights is small_hypergraph.weights
        assert not weights.flags.writeable
        with pytest.raises(ValueError):
            weights[0] = 99.0
        assert small_hypergraph.weights[0] == 1.0
        # .hyperedges is an immutable tuple of tuples, shared, not copied.
        hyperedges = small_hypergraph.hyperedges
        assert hyperedges is small_hypergraph.hyperedges
        assert isinstance(hyperedges, tuple)
        assert all(isinstance(edge, tuple) for edge in hyperedges)

    def test_derived_hypergraphs_do_not_alias_mutations(self, small_hypergraph):
        # A reweighted copy leaves the original untouched even though the
        # accessors share storage with the instance.
        reweighted = small_hypergraph.with_weights([2.0, 2.0, 2.0, 2.0])
        assert np.allclose(small_hypergraph.weights, 1.0)
        assert np.allclose(reweighted.weights, 2.0)
        assert reweighted.hyperedges == small_hypergraph.hyperedges

    def test_weights_default_and_custom(self, small_hypergraph):
        assert np.allclose(small_hypergraph.weights, 1.0)
        weighted = small_hypergraph.with_weights([1.0, 2.0, 3.0, 4.0])
        assert np.allclose(weighted.weights, [1.0, 2.0, 3.0, 4.0])

    def test_invalid_weights(self, small_hypergraph):
        with pytest.raises(HypergraphStructureError):
            small_hypergraph.with_weights([1.0])
        with pytest.raises(HypergraphStructureError):
            small_hypergraph.with_weights([1.0, -1.0, 1.0, 1.0])

    def test_incidence_matrix(self, small_hypergraph):
        incidence = small_hypergraph.incidence_matrix()
        assert sp.issparse(incidence)
        assert incidence.shape == (6, 4)
        assert incidence.sum() == sum(small_hypergraph.hyperedge_sizes())
        assert incidence[0, 0] == 1.0 and incidence[4, 0] == 0.0

    def test_degrees(self, small_hypergraph):
        node_degrees = small_hypergraph.node_degrees()
        assert node_degrees[2] == 2.0
        assert node_degrees[1] == 1.0
        weighted = small_hypergraph.with_weights([2.0, 1.0, 1.0, 1.0])
        assert weighted.node_degrees()[0] == 3.0
        assert np.array_equal(small_hypergraph.edge_degrees(), [3.0, 2.0, 3.0, 2.0])

    def test_memberships_and_isolated(self):
        hypergraph = Hypergraph(5, [[0, 1], [1, 2]])
        assert hypergraph.node_memberships(1) == [0, 1]
        assert np.array_equal(hypergraph.isolated_nodes(), [3, 4])
        with pytest.raises(HypergraphStructureError):
            hypergraph.node_memberships(10)

    def test_add_remove_hyperedges(self, small_hypergraph):
        grown = small_hypergraph.add_hyperedges([[1, 4]], weights=[2.0])
        assert grown.n_hyperedges == 5
        assert grown.weights[-1] == 2.0
        shrunk = grown.remove_hyperedges([0, 4])
        assert shrunk.n_hyperedges == 3
        with pytest.raises(HypergraphStructureError):
            grown.remove_hyperedges([99])

    def test_remove_all_hyperedges(self, small_hypergraph):
        empty = small_hypergraph.remove_hyperedges(range(4))
        assert empty.n_hyperedges == 0

    def test_subhypergraph_relabels_and_filters(self, small_hypergraph):
        sub = small_hypergraph.subhypergraph([0, 1, 2, 3])
        assert sub.n_nodes == 4
        assert (0, 1, 2) in sub.hyperedges
        assert (2, 3) in sub.hyperedges
        assert all(max(edge) < 4 for edge in sub.hyperedges)

    def test_subhypergraph_validation(self, small_hypergraph):
        with pytest.raises(HypergraphStructureError):
            small_hypergraph.subhypergraph([])
        with pytest.raises(HypergraphStructureError):
            small_hypergraph.subhypergraph([0, 99])

    def test_from_incidence_roundtrip(self, small_hypergraph):
        rebuilt = Hypergraph.from_incidence(small_hypergraph.incidence_matrix())
        assert rebuilt == small_hypergraph

    def test_empty_constructor(self):
        empty = Hypergraph.empty(5)
        assert empty.n_hyperedges == 0
        assert empty.incidence_matrix().shape == (5, 0)
        assert np.array_equal(empty.isolated_nodes(), np.arange(5))

    def test_equality(self, small_hypergraph):
        same = Hypergraph(6, [[0, 1, 2], [2, 3], [3, 4, 5], [0, 5]])
        assert small_hypergraph == same
        assert small_hypergraph != Hypergraph(6, [[0, 1]])


class TestPropagationOperator:
    def test_operator_is_symmetric_and_bounded(self, small_hypergraph):
        operator = hypergraph_propagation_operator(small_hypergraph).toarray()
        assert np.allclose(operator, operator.T)
        eigenvalues = np.linalg.eigvalsh(operator)
        assert eigenvalues.max() <= 1.0 + 1e-9

    def test_laplacian_positive_semidefinite(self, small_hypergraph):
        laplacian = hypergraph_laplacian(small_hypergraph).toarray()
        eigenvalues = np.linalg.eigvalsh(laplacian)
        assert eigenvalues.min() >= -1e-9

    def test_constant_signal_preserved_when_connected(self):
        hypergraph = Hypergraph(4, [[0, 1, 2, 3], [0, 1], [2, 3]])
        operator = hypergraph_propagation_operator(hypergraph).toarray()
        constant = np.ones(4)
        smoothed = operator @ constant
        # The propagation operator has the square-rooted degree vector as its
        # top eigenvector; for this symmetric structure a constant stays constant.
        assert np.allclose(smoothed, smoothed[0])

    def test_isolated_nodes_keep_identity_row(self):
        hypergraph = Hypergraph(4, [[0, 1]])
        operator = hypergraph_propagation_operator(hypergraph, self_loop_isolated=True).toarray()
        assert operator[2, 2] == 1.0 and operator[3, 3] == 1.0
        without = hypergraph_propagation_operator(hypergraph, self_loop_isolated=False).toarray()
        assert without[2, 2] == 0.0

    def test_empty_hypergraph_operator(self):
        operator = hypergraph_propagation_operator(Hypergraph.empty(3))
        assert np.allclose(operator.toarray(), np.eye(3))

    def test_weights_change_operator(self, small_hypergraph):
        base = hypergraph_propagation_operator(small_hypergraph).toarray()
        weighted = hypergraph_propagation_operator(
            small_hypergraph.with_weights([5.0, 1.0, 1.0, 1.0])
        ).toarray()
        assert not np.allclose(base, weighted)


class TestCompactnessWeights:
    def test_tighter_hyperedges_get_larger_weights(self):
        hypergraph = Hypergraph(6, [[0, 1, 2], [3, 4, 5]])
        features = np.array(
            [[0.0, 0.0], [0.1, 0.0], [0.0, 0.1], [0.0, 0.0], [5.0, 5.0], [-5.0, 5.0]]
        )
        weights = compactness_hyperedge_weights(hypergraph, features)
        assert weights[0] > weights[1]
        assert np.all(weights > 0)

    def test_mean_weight_is_one(self):
        hypergraph = Hypergraph(5, [[0, 1], [1, 2], [2, 3, 4]])
        features = np.random.default_rng(0).normal(size=(5, 3))
        weights = compactness_hyperedge_weights(hypergraph, features)
        assert np.mean(weights) == pytest.approx(1.0, rel=1e-6)

    def test_temperature_flattens_weights(self):
        hypergraph = Hypergraph(6, [[0, 1, 2], [3, 4, 5]])
        features = np.random.default_rng(1).normal(size=(6, 4))
        sharp = compactness_hyperedge_weights(hypergraph, features, temperature=0.5)
        smooth = compactness_hyperedge_weights(hypergraph, features, temperature=10.0)
        assert np.ptp(smooth) < np.ptp(sharp)

    def test_validation(self):
        hypergraph = Hypergraph(3, [[0, 1, 2]])
        with pytest.raises(ValueError):
            compactness_hyperedge_weights(hypergraph, np.zeros((2, 2)))
        with pytest.raises(ValueError):
            compactness_hyperedge_weights(hypergraph, np.zeros((3, 2)), temperature=0.0)
