"""Property-based tests (hypothesis) for the autograd engine."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import array_shapes, arrays

from repro.autograd import Tensor, check_gradients
from repro.autograd.function import unbroadcast
from repro.autograd.ops_activation import log_softmax, softmax

_FINITE_FLOATS = st.floats(min_value=-5.0, max_value=5.0, allow_nan=False, allow_infinity=False)


def small_arrays(max_side=4):
    return arrays(
        dtype=np.float64,
        shape=array_shapes(min_dims=1, max_dims=2, min_side=1, max_side=max_side),
        elements=_FINITE_FLOATS,
    )


@given(small_arrays())
@settings(max_examples=30, deadline=None)
def test_addition_is_commutative(data):
    a = Tensor(data)
    b = Tensor(data[::-1].copy().reshape(data.shape))
    assert np.allclose((a + b).data, (b + a).data)


@given(small_arrays())
@settings(max_examples=30, deadline=None)
def test_sum_matches_numpy(data):
    assert np.allclose(Tensor(data).sum().data, data.sum())


@given(small_arrays())
@settings(max_examples=30, deadline=None)
def test_mean_matches_numpy(data):
    assert np.allclose(Tensor(data).mean().data, data.mean())


@given(small_arrays())
@settings(max_examples=25, deadline=None)
def test_softmax_is_a_distribution(data):
    matrix = np.atleast_2d(data)
    out = softmax(Tensor(matrix), axis=-1).data
    assert np.all(out >= 0.0)
    assert np.allclose(out.sum(axis=-1), 1.0)


@given(small_arrays())
@settings(max_examples=25, deadline=None)
def test_log_softmax_is_log_of_softmax(data):
    matrix = np.atleast_2d(data)
    assert np.allclose(
        log_softmax(Tensor(matrix), axis=-1).data,
        np.log(softmax(Tensor(matrix), axis=-1).data + 1e-300),
        atol=1e-8,
    )


@given(
    arrays(np.float64, shape=st.tuples(st.integers(2, 4), st.integers(2, 4)), elements=_FINITE_FLOATS)
)
@settings(max_examples=20, deadline=None)
def test_quadratic_gradient_matches_numerical(data):
    x = Tensor(data, requires_grad=True)
    check_gradients(lambda x: ((x * x) + 2.0 * x).sum(), [x], atol=1e-4, rtol=1e-3)


@given(
    arrays(np.float64, shape=st.tuples(st.integers(1, 3), st.integers(1, 3)), elements=_FINITE_FLOATS),
    st.sampled_from([(1,), (3, 1), (1, 3), (3, 3)]),
)
@settings(max_examples=40, deadline=None)
def test_unbroadcast_restores_shape(grad_base, target_shape):
    try:
        broadcast = np.broadcast_to(np.zeros(target_shape), (3, 3))
    except ValueError:
        return
    grad = np.ones((3, 3))
    result = unbroadcast(grad, target_shape)
    assert result.shape == target_shape
    # The total mass is preserved by summation.
    assert np.isclose(result.sum(), grad.sum())
    del grad_base, broadcast


@given(small_arrays())
@settings(max_examples=30, deadline=None)
def test_backward_of_sum_is_ones(data):
    x = Tensor(data, requires_grad=True)
    x.sum().backward()
    assert np.allclose(x.grad, np.ones_like(data))
