"""Property-based tests (hypothesis) for the autograd engine."""

import numpy as np
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import array_shapes, arrays

from repro.autograd import Tensor, check_gradients
from repro.autograd.function import unbroadcast
from repro.autograd.ops_activation import log_softmax, softmax
from repro.autograd.ops_sparse import spmm
from repro.hypergraph import Hypergraph, OperatorCache, hypergraph_propagation_operator

_FINITE_FLOATS = st.floats(min_value=-5.0, max_value=5.0, allow_nan=False, allow_infinity=False)


def small_arrays(max_side=4):
    return arrays(
        dtype=np.float64,
        shape=array_shapes(min_dims=1, max_dims=2, min_side=1, max_side=max_side),
        elements=_FINITE_FLOATS,
    )


@given(small_arrays())
@settings(max_examples=30, deadline=None)
def test_addition_is_commutative(data):
    a = Tensor(data)
    b = Tensor(data[::-1].copy().reshape(data.shape))
    assert np.allclose((a + b).data, (b + a).data)


@given(small_arrays())
@settings(max_examples=30, deadline=None)
def test_sum_matches_numpy(data):
    assert np.allclose(Tensor(data).sum().data, data.sum())


@given(small_arrays())
@settings(max_examples=30, deadline=None)
def test_mean_matches_numpy(data):
    assert np.allclose(Tensor(data).mean().data, data.mean())


@given(small_arrays())
@settings(max_examples=25, deadline=None)
def test_softmax_is_a_distribution(data):
    matrix = np.atleast_2d(data)
    out = softmax(Tensor(matrix), axis=-1).data
    assert np.all(out >= 0.0)
    assert np.allclose(out.sum(axis=-1), 1.0)


@given(small_arrays())
@settings(max_examples=25, deadline=None)
def test_log_softmax_is_log_of_softmax(data):
    matrix = np.atleast_2d(data)
    assert np.allclose(
        log_softmax(Tensor(matrix), axis=-1).data,
        np.log(softmax(Tensor(matrix), axis=-1).data + 1e-300),
        atol=1e-8,
    )


@given(
    arrays(np.float64, shape=st.tuples(st.integers(2, 4), st.integers(2, 4)), elements=_FINITE_FLOATS)
)
@settings(max_examples=20, deadline=None)
def test_quadratic_gradient_matches_numerical(data):
    x = Tensor(data, requires_grad=True)
    check_gradients(lambda x: ((x * x) + 2.0 * x).sum(), [x], atol=1e-4, rtol=1e-3)


@given(
    arrays(np.float64, shape=st.tuples(st.integers(1, 3), st.integers(1, 3)), elements=_FINITE_FLOATS),
    st.sampled_from([(1,), (3, 1), (1, 3), (3, 3)]),
)
@settings(max_examples=40, deadline=None)
def test_unbroadcast_restores_shape(grad_base, target_shape):
    try:
        broadcast = np.broadcast_to(np.zeros(target_shape), (3, 3))
    except ValueError:
        return
    grad = np.ones((3, 3))
    result = unbroadcast(grad, target_shape)
    assert result.shape == target_shape
    # The total mass is preserved by summation.
    assert np.isclose(result.sum(), grad.sum())
    del grad_base, broadcast


@given(small_arrays())
@settings(max_examples=30, deadline=None)
def test_backward_of_sum_is_ones(data):
    x = Tensor(data, requires_grad=True)
    x.sum().backward()
    assert np.allclose(x.grad, np.ones_like(data))


# --------------------------------------------------------------------------- #
# spmm: constant-operator backward (ops_sparse.py)
# --------------------------------------------------------------------------- #
@given(seed=st.integers(0, 2**32 - 1), d=st.integers(1, 3))
@settings(max_examples=15, deadline=None)
def test_spmm_gradient_against_cached_csr_operator(seed, d):
    """The backward rule must hold for an operator served from the cache."""
    rng = np.random.default_rng(seed)
    hypergraph = Hypergraph(
        6, [[0, 1, 2], [2, 3], [3, 4, 5], [0, 5]], weights=rng.uniform(0.5, 2.0, 4)
    )
    cache = OperatorCache()
    cache.propagation_operator(hypergraph)  # warm
    operator = cache.propagation_operator(hypergraph)  # cache hit
    assert sp.issparse(operator)
    x = Tensor(rng.normal(size=(6, d)), requires_grad=True)
    check_gradients(lambda t: (spmm(operator, t) * spmm(operator, t)).sum(), [x], atol=1e-4, rtol=1e-3)


@given(seed=st.integers(0, 2**32 - 1))
@settings(max_examples=15, deadline=None)
def test_spmm_gradient_with_explicit_zero_rows(seed):
    """Isolated nodes give all-zero operator rows; their gradient is zero."""
    rng = np.random.default_rng(seed)
    # Nodes 4 and 5 belong to no hyperedge; without self-loops their operator
    # rows (and columns) are explicitly zero.
    hypergraph = Hypergraph(6, [[0, 1], [1, 2, 3]])
    operator = hypergraph_propagation_operator(hypergraph, self_loop_isolated=False)
    dense = operator.toarray()
    assert np.all(dense[4] == 0.0) and np.all(dense[5] == 0.0)

    x = Tensor(rng.normal(size=(6, 2)), requires_grad=True)
    check_gradients(lambda t: (spmm(operator, t) * spmm(operator, t)).sum(), [x], atol=1e-4, rtol=1e-3)

    # The analytic gradient w.r.t. an isolated node's features is exactly zero
    # (its column of the symmetric operator is zero).
    x.zero_grad()
    (spmm(operator, x) * spmm(operator, x)).sum().backward()
    assert np.all(x.grad[4] == 0.0) and np.all(x.grad[5] == 0.0)
    assert np.any(x.grad[:4] != 0.0)
