"""Tests of the precision-policy subsystem (repro.precision).

Covers the policy API itself, dtype propagation through every op family
(forward results *and* backward gradients), float32 gradient checks with
widened tolerances, the dtype-keyed operator cache, the spmm transpose cache,
the fused dropout mask, and float64-vs-float32 end-to-end training parity.
"""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro import (
    DHGCN,
    HGNN,
    TrainConfig,
    Trainer,
    get_precision,
    precision,
    reset_default_engine,
    set_precision,
)
from repro.autograd import (
    Tensor,
    check_gradients,
    concat,
    cross_entropy,
    gather_rows,
    mse_loss,
    recommended_tolerances,
    spmm,
    zeros_like,
)
from repro.autograd import ops_activation, ops_basic, ops_reduce, ops_shape
from repro.autograd.ops_sparse import _TRANSPOSE_CACHE, _transposed
from repro.errors import ConfigurationError
from repro.hypergraph import OperatorCache
from repro.hypergraph.neighbors import available_neighbor_backends, resolve_backend
from repro.hypergraph.construction import knn_hyperedges
from repro.hypergraph.laplacian import hypergraph_propagation_operator
from repro.nn import Dropout, Linear
from repro.nn.normalization import BatchNorm1d, LayerNorm
from repro.optim import Adam
from repro.precision import SUPPORTED_PRECISIONS, get_dtype, normalize_precision, resolve_dtype


@pytest.fixture(autouse=True)
def _restore_policy():
    """Every test leaves the process-wide policy as it found it."""
    previous = get_precision()
    yield
    set_precision(previous)


# --------------------------------------------------------------------------- #
# Policy API
# --------------------------------------------------------------------------- #
class TestPolicyAPI:
    def test_default_is_float64(self):
        assert get_precision() == "float64"
        assert get_dtype() == np.float64
        assert Tensor([1.5, 2.5]).dtype == np.float64

    def test_set_and_get(self):
        set_precision("float32")
        assert get_precision() == "float32"
        assert Tensor([1.5]).dtype == np.float32

    def test_accepts_numpy_dtypes(self):
        assert normalize_precision(np.float32) == "float32"
        assert normalize_precision(np.dtype("float64")) == "float64"

    def test_rejects_unsupported(self):
        with pytest.raises(ConfigurationError):
            set_precision("float16")
        with pytest.raises(ConfigurationError):
            normalize_precision("int32")

    def test_context_manager_scopes_and_restores(self):
        assert get_precision() == "float64"
        with precision("float32"):
            assert get_precision() == "float32"
            with precision("float64"):
                assert get_precision() == "float64"
            assert get_precision() == "float32"
        assert get_precision() == "float64"

    def test_context_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with precision("float32"):
                raise RuntimeError("boom")
        assert get_precision() == "float64"

    def test_resolve_dtype(self):
        assert resolve_dtype() == np.float64
        assert resolve_dtype("float32") == np.float32
        with precision("float32"):
            assert resolve_dtype() == np.float32
            assert resolve_dtype("float64") == np.float64

    def test_supported_list(self):
        assert set(SUPPORTED_PRECISIONS) == {"float64", "float32"}


# --------------------------------------------------------------------------- #
# Tensor-level behaviour
# --------------------------------------------------------------------------- #
class TestTensorDtype:
    def test_leaf_follows_policy(self):
        with precision("float32"):
            assert Tensor(np.arange(3)).dtype == np.float32
            assert Tensor(np.arange(3.0, dtype=np.float64)).dtype == np.float32

    def test_explicit_dtype_overrides_policy(self):
        with precision("float32"):
            assert Tensor([1.0], dtype=np.float64).dtype == np.float64

    def test_detach_and_copy_preserve_dtype(self):
        with precision("float32"):
            t = Tensor([1.0, 2.0])
        # Outside the context the dtype must not silently revert to float64.
        assert t.detach().dtype == np.float32
        assert t.copy().dtype == np.float32

    def test_astype_round_trip(self):
        t = Tensor([1.0, 2.0])
        t32 = t.astype(np.float32)
        assert t32.dtype == np.float32
        assert np.allclose(t32.data, t.data)

    def test_astype_never_aliases(self):
        t = Tensor([1.0, 2.0])
        same = t.astype(np.float64)
        same.data[0] = 99.0
        assert t.data[0] == 1.0

    def test_scalar_operands_follow_tensor_outside_context(self):
        # "Ops follow their operands": a float32 graph used *outside* the
        # precision context must not be promoted back to float64 by python
        # scalar constants.
        with precision("float32"):
            t = Tensor(np.ones((2, 2)), requires_grad=True)
        out = (t * 2.0 + 1.0) / 3.0 - 0.5
        assert out.dtype == np.float32
        out.sum().backward()
        assert t.grad.dtype == np.float32

    def test_full_reductions_follow_operands_outside_context(self):
        # Full reductions return numpy *scalars* from forward; they must keep
        # the operand dtype rather than adopting the ambient policy.
        with precision("float32"):
            t = Tensor(np.ones((2, 3)))
        assert t.sum().dtype == np.float32
        assert t.mean().dtype == np.float32
        assert t.max().dtype == np.float32

    def test_zeros_like_preserves_float_dtype(self):
        with precision("float32"):
            t = Tensor([1.0, 2.0])
        z = zeros_like(t)
        assert z.dtype == np.float32

    def test_backward_grad_matches_tensor_dtype(self):
        with precision("float32"):
            x = Tensor([[1.0, 2.0]], requires_grad=True)
            y = (x * x).sum()
            y.backward()
        assert x.grad.dtype == np.float32


# --------------------------------------------------------------------------- #
# Dtype propagation across every op family
# --------------------------------------------------------------------------- #
def _unary_ops():
    return {
        "neg": ops_basic.neg,
        "exp": ops_basic.exp,
        "log": lambda t: ops_basic.log(t * t + 1.0),
        "sqrt": lambda t: ops_basic.sqrt(t * t + 1.0),
        "pow": lambda t: ops_basic.pow_(t, 3.0),
        "relu": ops_activation.relu,
        "leaky_relu": ops_activation.leaky_relu,
        "elu": ops_activation.elu,
        "sigmoid": ops_activation.sigmoid,
        "tanh": ops_activation.tanh,
        "softmax": ops_activation.softmax,
        "log_softmax": ops_activation.log_softmax,
        "sum": lambda t: ops_reduce.sum_(t, axis=0, keepdims=True),
        "mean": lambda t: ops_reduce.mean(t, axis=1),
        "max": lambda t: ops_reduce.max_(t, axis=0),
        "min": lambda t: ops_reduce.min_(t, axis=1),
        "reshape": lambda t: ops_shape.reshape(t, (t.size,)),
        "transpose": lambda t: ops_shape.transpose(t),
        "getitem": lambda t: t[1:, :2],
        "gather_rows": lambda t: gather_rows(t, np.array([0, 2, 1])),
    }


def _binary_ops():
    return {
        "add": ops_basic.add,
        "sub": ops_basic.sub,
        "mul": ops_basic.mul,
        "div": lambda a, b: ops_basic.div(a, b * b + 1.0),
        "matmul": lambda a, b: ops_basic.matmul(a, ops_shape.transpose(b)),
        "concat": lambda a, b: concat([a, b], axis=0),
        "stack": lambda a, b: ops_shape.stack([a, b], axis=0),
    }


class TestOpDtypePropagation:
    @pytest.mark.parametrize("name", sorted(_unary_ops()))
    @pytest.mark.parametrize("policy", ["float32", "float64"])
    def test_unary_forward_and_grad(self, name, policy):
        expected = np.dtype(policy)
        op = _unary_ops()[name]
        with precision(policy):
            rng = np.random.default_rng(0)
            x = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
            out = op(x)
            assert out.dtype == expected, f"{name} forward dtype {out.dtype}"
            out.sum().backward()
            assert x.grad is not None
            assert x.grad.dtype == expected, f"{name} grad dtype {x.grad.dtype}"

    @pytest.mark.parametrize("name", sorted(_binary_ops()))
    @pytest.mark.parametrize("policy", ["float32", "float64"])
    def test_binary_forward_and_grad(self, name, policy):
        expected = np.dtype(policy)
        op = _binary_ops()[name]
        with precision(policy):
            rng = np.random.default_rng(1)
            a = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
            b = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
            out = op(a, b)
            assert out.dtype == expected, f"{name} forward dtype {out.dtype}"
            out.sum().backward()
            assert a.grad.dtype == expected
            assert b.grad.dtype == expected

    @pytest.mark.parametrize("policy", ["float32", "float64"])
    def test_spmm(self, policy):
        expected = np.dtype(policy)
        with precision(policy):
            rng = np.random.default_rng(2)
            operator = sp.random(
                5, 5, density=0.6, format="csr", random_state=3
            ).astype(expected)
            x = Tensor(rng.normal(size=(5, 3)), requires_grad=True)
            out = spmm(operator, x)
            assert out.dtype == expected
            out.sum().backward()
            assert x.grad.dtype == expected

    @pytest.mark.parametrize("policy", ["float32", "float64"])
    def test_losses(self, policy):
        expected = np.dtype(policy)
        with precision(policy):
            rng = np.random.default_rng(3)
            logits = Tensor(rng.normal(size=(6, 3)), requires_grad=True)
            targets = np.array([0, 1, 2, 0, 1, 2])
            loss = cross_entropy(logits, targets, np.array([0, 2, 4]))
            assert loss.dtype == expected
            loss.backward()
            assert logits.grad.dtype == expected

            prediction = Tensor(rng.normal(size=(4, 2)), requires_grad=True)
            loss = mse_loss(prediction, rng.normal(size=(4, 2)))
            assert loss.dtype == expected
            loss.backward()
            assert prediction.grad.dtype == expected

    def test_scalar_operands_follow_policy(self):
        with precision("float32"):
            x = Tensor([[1.0, -2.0]], requires_grad=True)
            out = (2.0 * x + 1.0) / 3.0 - 0.5
            assert out.dtype == np.float32
            out.sum().backward()
            assert x.grad.dtype == np.float32

    def test_nn_layers_propagate(self):
        with precision("float32"):
            rng = np.random.default_rng(4)
            x = Tensor(rng.normal(size=(8, 5)), requires_grad=True)
            for layer in (Linear(5, 4, seed=0), LayerNorm(5), BatchNorm1d(5)):
                out = layer(x)
                assert out.dtype == np.float32, f"{layer!r} produced {out.dtype}"
            for parameter in Linear(5, 4, seed=0).parameters():
                assert parameter.dtype == np.float32


# --------------------------------------------------------------------------- #
# float32 gradient checks (widened tolerances)
# --------------------------------------------------------------------------- #
class TestFloat32GradChecks:
    def test_recommended_tolerances(self):
        assert recommended_tolerances(np.float32)["epsilon"] > recommended_tolerances(
            np.float64
        )["epsilon"]
        assert recommended_tolerances("float64") == {
            "epsilon": 1e-6,
            "atol": 1e-5,
            "rtol": 1e-4,
        }

    @pytest.mark.parametrize(
        "build",
        [
            lambda a, b: (a @ b).sum(),
            lambda a, b: (a * b + a).mean(),
            lambda a, b: a.relu().sum() + b.tanh().sum(),
            lambda a, b: cross_entropy(a @ b, np.array([0, 1, 0])),
        ],
    )
    def test_float32_gradients_match_numerics(self, build):
        with precision("float32"):
            rng = np.random.default_rng(5)
            a = Tensor(rng.normal(size=(3, 3)), requires_grad=True)
            b = Tensor(rng.normal(size=(3, 3)), requires_grad=True)
            assert check_gradients(build, [a, b], **recommended_tolerances(np.float32))

    def test_float32_spmm_gradient(self):
        with precision("float32"):
            rng = np.random.default_rng(6)
            operator = sp.random(
                4, 4, density=0.7, format="csr", random_state=7
            ).astype(np.float32)
            x = Tensor(rng.normal(size=(4, 2)), requires_grad=True)
            assert check_gradients(
                lambda t: spmm(operator, t).sum(),
                [x],
                **recommended_tolerances(np.float32),
            )


# --------------------------------------------------------------------------- #
# Operator pipeline: dtype-keyed cache + policy-dtyped operators
# --------------------------------------------------------------------------- #
class TestOperatorDtypes:
    def _hypergraph(self):
        rng = np.random.default_rng(8)
        return knn_hyperedges(rng.normal(size=(30, 6)), 3)

    def test_propagation_operator_dtype_param(self):
        hypergraph = self._hypergraph()
        op64 = hypergraph_propagation_operator(hypergraph)
        op32 = hypergraph_propagation_operator(hypergraph, dtype=np.float32)
        assert op64.dtype == np.float64
        assert op32.dtype == np.float32
        assert np.allclose(op64.toarray(), op32.toarray(), atol=1e-6)

    def test_propagation_operator_follows_policy(self):
        hypergraph = self._hypergraph()
        with precision("float32"):
            assert hypergraph_propagation_operator(hypergraph).dtype == np.float32

    def test_cache_keys_include_dtype(self):
        hypergraph = self._hypergraph()
        cache = OperatorCache()
        op64 = cache.propagation_operator(hypergraph)
        op32 = cache.propagation_operator(hypergraph, dtype=np.float32)
        assert op64.dtype == np.float64 and op32.dtype == np.float32
        assert len(cache) == 2
        assert cache.stats()["hits"] == 0
        # Same-dtype re-request hits; the other dtype's entry is untouched.
        assert cache.propagation_operator(hypergraph, dtype=np.float32) is op32
        assert cache.propagation_operator(hypergraph) is op64
        assert cache.stats()["hits"] == 2

    def test_builder_slots_track_layers_independently(self):
        # A multi-layer model shares one builder: each layer's refresh must
        # supersede *its own* previous topology, so a layer that rebuilds an
        # identical topology keeps hitting the cache even though its sibling
        # layer built a different hypergraph in between.
        from repro.core.builder import DynamicHypergraphBuilder
        from repro.hypergraph.refresh import TopologyRefreshEngine

        engine = TopologyRefreshEngine()
        builder = DynamicHypergraphBuilder(
            k_neighbors=2, use_cluster=False, use_edge_weighting=False,
            seed=0, engine=engine,
        )
        rng = np.random.default_rng(13)
        layer0 = rng.normal(size=(20, 4))
        layer1 = rng.normal(size=(20, 4)) + 10.0
        for _ in range(3):  # three refreshes of a 2-layer model
            builder.build_operator(layer0, slot=0)
            builder.build_operator(layer1, slot=1)
        stats = engine.stats()
        assert stats["misses"] == 2  # one cold build per layer
        assert stats["hits"] == 4  # both layers hit on refreshes 2 and 3

    def test_discard_drops_every_dtype(self):
        hypergraph = self._hypergraph()
        cache = OperatorCache()
        cache.propagation_operator(hypergraph)
        cache.propagation_operator(hypergraph, dtype=np.float32)
        cache.laplacian(hypergraph)
        assert cache.discard(hypergraph) == 3
        assert len(cache) == 0


# --------------------------------------------------------------------------- #
# spmm transpose cache
# --------------------------------------------------------------------------- #
class TestSpmmTransposeCache:
    def test_transpose_is_cached_per_operator_object(self):
        operator = sp.random(6, 6, density=0.5, format="csr", random_state=9)
        first = _transposed(operator)
        assert _transposed(operator) is first
        assert np.allclose(first.toarray(), operator.T.toarray())

    def test_cache_invalidated_when_operator_collected(self):
        operator = sp.random(6, 6, density=0.5, format="csr", random_state=10)
        _transposed(operator)
        key = id(operator)
        assert key in _TRANSPOSE_CACHE
        del operator
        import gc

        gc.collect()
        assert key not in _TRANSPOSE_CACHE

    def test_cached_operator_is_frozen_against_mutation(self):
        # Identity-keyed memoisation can't see in-place value changes, so the
        # operator's arrays are frozen: mutation raises instead of silently
        # producing gradients from a stale transpose.
        operator = sp.random(6, 6, density=0.5, format="csr", random_state=21)
        _transposed(operator)
        with pytest.raises(ValueError):
            operator.data[:] *= 2.0

    def test_dense_operator_backward_follows_mutation(self):
        # Dense operators are not memoised (ndarray.T is a free view), so
        # in-place updates keep working and stay correct.
        operator = np.arange(9.0).reshape(3, 3)
        x = Tensor(np.ones((3, 2)), requires_grad=True)
        spmm(operator, x).sum().backward()
        first = x.grad.copy()
        operator *= 2.0
        x.zero_grad()
        spmm(operator, x).sum().backward()
        assert np.allclose(x.grad, 2.0 * first)

    def test_spmm_backward_uses_cached_transpose(self):
        operator = sp.random(5, 5, density=0.8, format="csr", random_state=11)
        x = Tensor(np.random.default_rng(12).normal(size=(5, 3)), requires_grad=True)
        spmm(operator, x).sum().backward()
        expected = operator.T.toarray() @ np.ones((5, 3))
        assert np.allclose(x.grad, expected)
        assert _transposed(operator) is _transposed(operator)


# --------------------------------------------------------------------------- #
# Fused dropout
# --------------------------------------------------------------------------- #
class TestDropoutFusion:
    def test_mask_values_and_dtype(self):
        for policy in ("float64", "float32"):
            with precision(policy):
                dropout = Dropout(p=0.4, seed=0)
                x = Tensor(np.ones((64, 64)))
                out = dropout(x)
                assert out.dtype == np.dtype(policy)
                values = np.unique(out.data)
                keep = 1.0 / 0.6
                assert all(
                    np.isclose(v, 0.0) or np.isclose(v, keep, rtol=1e-6) for v in values
                )

    def test_float64_mask_matches_unfused_reference(self):
        # The fused build must reproduce the historical bool->astype->divide
        # mask bit for bit under the default policy.
        p, shape = 0.5, (32, 16)
        reference_rng = np.random.default_rng(123)
        reference = (reference_rng.random(shape) < (1.0 - p)).astype(np.float64)
        reference /= 1.0 - p
        dropout = Dropout(p=p, seed=123)
        out = dropout(Tensor(np.ones(shape)))
        assert np.array_equal(out.data, reference)

    def test_eval_mode_passthrough(self):
        dropout = Dropout(p=0.9, seed=0)
        dropout.eval()
        x = Tensor(np.ones((4, 4)))
        assert dropout(x) is x


# --------------------------------------------------------------------------- #
# Module casting + optimizer state dtype
# --------------------------------------------------------------------------- #
class TestModuleCasting:
    def test_module_to_casts_parameters_and_buffers(self):
        layer = BatchNorm1d(4)
        layer.to("float32")
        assert all(p.dtype == np.float32 for p in layer.parameters())
        assert layer.running_mean.dtype == np.float32
        assert layer.running_var.dtype == np.float32
        layer.to("float64")
        assert all(p.dtype == np.float64 for p in layer.parameters())

    def test_state_dict_round_trip_keeps_dtype(self):
        layer = Linear(3, 2, seed=0)
        layer.to("float32")
        state = layer.state_dict()
        layer.load_state_dict(state)
        assert layer.weight.dtype == np.float32

    def test_optimizer_state_in_parameter_dtype(self):
        with precision("float32"):
            layer = Linear(3, 2, seed=0)
            optimizer = Adam(layer.parameters(), lr=0.01)
            out = layer(Tensor(np.ones((4, 3)))).sum()
            out.backward()
            optimizer.step()
        assert all(m.dtype == np.float32 for m in optimizer._first_moment)
        assert all(v.dtype == np.float32 for v in optimizer._second_moment)
        assert layer.weight.dtype == np.float32


# --------------------------------------------------------------------------- #
# Trainer integration
# --------------------------------------------------------------------------- #
class TestTrainerPrecision:
    def test_config_validates_precision(self):
        with pytest.raises(ConfigurationError):
            TrainConfig(precision="float16")
        assert TrainConfig(precision="float32").precision == "float32"

    def test_float32_training_parity(self, tiny_citation_dataset):
        """float32 training stays close to float64 and reuses the cache the
        same way (same hit/miss pattern, only the dtype key differs)."""
        results = {}
        for policy in ("float64", "float32"):
            reset_default_engine()
            model = HGNN(
                tiny_citation_dataset.n_features, tiny_citation_dataset.n_classes, seed=0
            )
            config = TrainConfig(epochs=30, patience=None, precision=policy)
            trainer = Trainer(model, tiny_citation_dataset, config)
            results[policy] = trainer.train()
            assert model.parameters()[0].dtype == np.dtype(policy)
            assert trainer._features.dtype == np.dtype(policy)
        delta = abs(results["float64"].test_accuracy - results["float32"].test_accuracy)
        assert delta <= 0.15, f"precision gap too large: {delta:.3f}"

    def test_dhgcn_float32_cache_pattern_unaffected(self, tiny_citation_dataset):
        stats = {}
        for policy in ("float64", "float32"):
            reset_default_engine()
            model = DHGCN(
                tiny_citation_dataset.n_features, tiny_citation_dataset.n_classes, seed=0
            )
            config = TrainConfig(epochs=6, patience=None, precision=policy)
            result = Trainer(model, tiny_citation_dataset, config).train()
            stats[policy] = result.extras["operator_cache"]
            assert 0.0 <= result.test_accuracy <= 1.0
        assert stats["float64"]["misses"] == stats["float32"]["misses"]
        assert stats["float64"]["hits"] == stats["float32"]["hits"]

    def test_ambient_policy_untouched_by_float32_run(self, tiny_citation_dataset):
        model = HGNN(
            tiny_citation_dataset.n_features, tiny_citation_dataset.n_classes, seed=0
        )
        Trainer(
            model,
            tiny_citation_dataset,
            TrainConfig(epochs=2, patience=None, precision="float32"),
        ).train()
        assert get_precision() == "float64"
        assert Tensor([1.0]).dtype == np.float64

    def test_restore_best_false_skips_state_dict_copy(self, tiny_citation_dataset):
        model = HGNN(
            tiny_citation_dataset.n_features, tiny_citation_dataset.n_classes, seed=0
        )
        calls = {"count": 0}
        original = model.state_dict

        def counting_state_dict():
            calls["count"] += 1
            return original()

        model.state_dict = counting_state_dict
        config = TrainConfig(epochs=4, patience=None, restore_best=False)
        result = Trainer(model, tiny_citation_dataset, config).train()
        assert calls["count"] == 0
        assert result.epochs_run == 4

    def test_restore_best_true_still_restores(self, tiny_citation_dataset):
        model = HGNN(
            tiny_citation_dataset.n_features, tiny_citation_dataset.n_classes, seed=0
        )
        config = TrainConfig(epochs=4, patience=None, restore_best=True)
        result = Trainer(model, tiny_citation_dataset, config).train()
        assert result.best_epoch >= 0


# --------------------------------------------------------------------------- #
# Neighbour-backend distance slabs follow the feature dtype
# --------------------------------------------------------------------------- #
class TestNeighborBackendDtypeStability:
    """float32 policy + every neighbour backend: no silent float64 slabs.

    Every distance slab any backend materialises goes through
    :func:`repro.hypergraph.knn.distance_block`; spying on it proves the
    whole query path is dtype-stable (the ROADMAP "float32 structural
    pipeline" note).
    """

    @staticmethod
    def _spy_distance_block(monkeypatch):
        import repro.hypergraph.knn as knn_mod

        recorded: list[np.dtype] = []
        original = knn_mod.distance_block

        def spy(queries, points, metric="euclidean"):
            slab = original(queries, points, metric=metric)
            recorded.append(slab.dtype)
            return slab

        monkeypatch.setattr(knn_mod, "distance_block", spy)
        return recorded

    @pytest.mark.parametrize("name", available_neighbor_backends())
    def test_float32_query_keeps_slabs_float32(self, name, monkeypatch):
        recorded = self._spy_distance_block(monkeypatch)
        rng = np.random.default_rng(0)
        with precision("float32"):
            features = rng.normal(size=(80, 8)).astype(np.float32)
            backend = resolve_backend(name)
            result = backend.query(features, 5)
            if name == "incremental":
                # the partial path allocates its own slabs too
                moved = features.copy()
                moved[3] += np.float32(0.01)
                result = backend.query(moved, 5)
        assert result.shape == (80, 5)
        assert recorded, "backend never went through the shared distance kernel"
        assert all(dtype == np.float32 for dtype in recorded), recorded

    @pytest.mark.parametrize("name", available_neighbor_backends())
    def test_float64_default_slabs_stay_float64(self, name, monkeypatch):
        recorded = self._spy_distance_block(monkeypatch)
        features = np.random.default_rng(1).normal(size=(40, 6))
        resolve_backend(name).query(features, 4)
        assert recorded and all(dtype == np.float64 for dtype in recorded)

    def test_float32_euclidean_kernel_matches_cdist(self):
        from repro.hypergraph.knn import distance_block

        rng = np.random.default_rng(2)
        queries = rng.normal(size=(20, 5)).astype(np.float32)
        points = rng.normal(size=(30, 5)).astype(np.float32)
        slab = distance_block(queries, points)
        assert slab.dtype == np.float32
        reference = distance_block(queries.astype(np.float64), points.astype(np.float64))
        assert np.allclose(slab, reference, atol=1e-4)

    def test_float32_selection_agrees_with_float64(self):
        # The float32 kernel may flip genuine near-ties (documented), but on
        # clustered data the selected neighbour sets must agree almost
        # everywhere with the float64 reference.
        from repro.hypergraph import knn_indices

        rng = np.random.default_rng(3)
        centers = rng.normal(scale=10.0, size=(5, 8))
        features = np.vstack(
            [c + rng.normal(scale=0.1, size=(20, 8)) for c in centers]
        )
        fast = knn_indices(features.astype(np.float32), 6)
        reference = knn_indices(features, 6)
        overlap = np.mean(
            [np.intersect1d(fast[row], reference[row]).size for row in range(100)]
        ) / 6.0
        assert overlap >= 0.95, f"float32 neighbour overlap only {overlap:.3f}"

    def test_float32_model_refresh_path_keeps_slabs_float32(self, monkeypatch):
        """The *model* refresh path (knn_hyperedges / builder), not just a
        direct backend.query, must keep float32 distance slabs — a hard
        float64 cast before the query would silently restore full-bandwidth
        slabs while the backend-level test stays green."""
        from repro.core import DynamicHypergraphBuilder
        from repro.hypergraph.construction import knn_hyperedges
        from repro.hypergraph.refresh import TopologyRefreshEngine

        recorded = self._spy_distance_block(monkeypatch)
        rng = np.random.default_rng(4)
        embedding = rng.normal(size=(60, 8)).astype(np.float32)
        with precision("float32"):
            knn_hyperedges(embedding, 4)
            builder = DynamicHypergraphBuilder(
                k_neighbors=3, n_clusters=2, engine=TopologyRefreshEngine()
            )
            builder.build_hypergraph(embedding)
        assert recorded and all(dtype == np.float32 for dtype in recorded), recorded

    def test_float32_kernel_stable_for_off_origin_data(self):
        # Regression: the |a|²+|b|²−2ab expansion cancels catastrophically
        # for clusters far from the origin (e.g. post-ReLU embeddings) unless
        # the inputs are mean-centred first — without centring this data gave
        # ~13% neighbour overlap with the float64 reference.
        from repro.hypergraph import knn_indices

        rng = np.random.default_rng(5)
        features = 100.0 + rng.normal(scale=1e-2, size=(50, 8))
        fast = knn_indices(features.astype(np.float32), 5)
        reference = knn_indices(features, 5)
        overlap = np.mean(
            [np.intersect1d(fast[row], reference[row]).size for row in range(50)]
        ) / 5.0
        assert overlap >= 0.95, f"off-origin float32 overlap only {overlap:.3f}"
