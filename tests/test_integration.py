"""End-to-end integration tests across the whole stack.

These tests exercise the exact code paths the benchmarks and examples use:
dataset generation -> model construction -> training -> evaluation, including
the qualitative claims the reproduction is built around (structure beats
feature-only models, the dynamic channel helps on noisy structure).
"""

import numpy as np
import pytest

import repro
from repro import (
    DHGCN,
    DHGCNConfig,
    HGNN,
    MLP,
    TrainConfig,
    Trainer,
    available_datasets,
    get_dataset,
)
from repro.data.citation import make_citation_dataset
from repro.hypergraph.construction import corrupt_hyperedges


def _train(model, dataset, epochs=40):
    return Trainer(model, dataset, TrainConfig(epochs=epochs, patience=None)).train()


class TestPublicApi:
    def test_version_and_exports(self):
        assert repro.__version__ == "1.0.0"
        for name in repro.__all__:
            assert hasattr(repro, name), f"missing export {name}"

    def test_registry_contains_all_paper_datasets(self):
        names = available_datasets()
        for expected in (
            "cora-cocitation",
            "citeseer-cocitation",
            "pubmed-cocitation",
            "cora-coauthorship",
            "dblp-coauthorship",
            "modelnet40",
            "ntu2012",
            "newsgroups",
        ):
            assert expected in names


class TestQuickstartPath:
    def test_quickstart_sequence(self):
        dataset = get_dataset("cora-cocitation", seed=0, n_nodes=280)
        model = DHGCN(dataset.n_features, dataset.n_classes, DHGCNConfig(hidden_dim=16), seed=0)
        result = Trainer(model, dataset, TrainConfig(epochs=30, patience=None)).train()
        assert 0.0 <= result.test_accuracy <= 1.0
        assert result.test_accuracy > 0.4


class TestQualitativeClaims:
    @pytest.fixture(scope="class")
    def structured_dataset(self):
        # Weak features + informative structure: the regime of the paper.
        return make_citation_dataset(
            "claims",
            n_nodes=260,
            n_classes=4,
            n_features=120,
            intra_class_degree=3.0,
            inter_class_degree=0.8,
            active_words=8,
            noise_words=4,
            confusion=0.7,
            train_per_class=8,
            seed=3,
        )

    def test_structure_models_beat_mlp(self, structured_dataset):
        dataset = structured_dataset
        mlp = _train(MLP(dataset.n_features, dataset.n_classes, hidden_dim=16, seed=0), dataset)
        hgnn = _train(HGNN(dataset.n_features, dataset.n_classes, hidden_dim=16, seed=0), dataset)
        assert hgnn.test_accuracy > mlp.test_accuracy + 0.05

    def test_dhgcn_competitive_with_static_hypergraph_model(self, structured_dataset):
        dataset = structured_dataset
        hgnn = _train(HGNN(dataset.n_features, dataset.n_classes, hidden_dim=16, seed=0), dataset)
        dhgcn = _train(
            DHGCN(dataset.n_features, dataset.n_classes, DHGCNConfig(hidden_dim=16), seed=0),
            dataset,
        )
        assert dhgcn.test_accuracy >= hgnn.test_accuracy - 0.03

    def test_dynamic_channel_is_more_robust_to_structure_noise(self, structured_dataset):
        dataset = structured_dataset
        corrupted = dataset.with_hypergraph(
            corrupt_hyperedges(dataset.hypergraph, 0.8, seed=0)
        )
        hgnn = _train(HGNN(dataset.n_features, dataset.n_classes, hidden_dim=16, seed=0), corrupted)
        dhgcn = _train(
            DHGCN(dataset.n_features, dataset.n_classes, DHGCNConfig(hidden_dim=16), seed=0),
            corrupted,
        )
        assert dhgcn.test_accuracy > hgnn.test_accuracy

    def test_full_dhgcn_not_worse_than_heavily_ablated_variant(self, structured_dataset):
        dataset = structured_dataset
        full = _train(
            DHGCN(dataset.n_features, dataset.n_classes, DHGCNConfig(hidden_dim=16), seed=1),
            dataset,
        )
        static_only = _train(
            DHGCN(
                dataset.n_features,
                dataset.n_classes,
                DHGCNConfig(hidden_dim=16).ablate("dynamic"),
                seed=1,
            ),
            dataset,
        )
        assert full.test_accuracy >= static_only.test_accuracy - 0.02


class TestReproducibility:
    def test_same_seed_same_result(self):
        results = []
        for _ in range(2):
            dataset = get_dataset("cora-coauthorship", seed=5, n_nodes=200)
            model = DHGCN(dataset.n_features, dataset.n_classes, DHGCNConfig(hidden_dim=8), seed=5)
            results.append(
                Trainer(model, dataset, TrainConfig(epochs=12, patience=None)).train().test_accuracy
            )
        assert results[0] == pytest.approx(results[1])

    def test_different_seeds_generally_differ(self):
        accuracies = set()
        for seed in (0, 1, 2):
            dataset = get_dataset("cora-cocitation", seed=seed, n_nodes=280)
            model = MLP(dataset.n_features, dataset.n_classes, hidden_dim=8, seed=seed)
            accuracies.add(
                round(
                    Trainer(model, dataset, TrainConfig(epochs=8, patience=None)).train().test_accuracy,
                    6,
                )
            )
        assert len(accuracies) >= 2
