"""Tests for the nn module system: Module/Parameter, layers, containers, init."""

import numpy as np
import pytest

from repro.autograd import Tensor, cross_entropy
from repro.nn import (
    ELU,
    BatchNorm1d,
    Dropout,
    LayerNorm,
    LeakyReLU,
    Linear,
    Bilinear,
    ModuleList,
    Parameter,
    ReLU,
    Sequential,
    Sigmoid,
    Softmax,
    Tanh,
    calculate_gain,
    kaiming_uniform,
    xavier_normal,
    xavier_uniform,
)
from repro.nn.module import Module


class TestModuleSystem:
    def test_parameter_registration(self):
        class Toy(Module):
            def __init__(self):
                super().__init__()
                self.weight = Parameter(np.ones((2, 2)))
                self.child = Linear(2, 3, seed=0)

        toy = Toy()
        names = [name for name, _ in toy.named_parameters()]
        assert "weight" in names
        assert "child.weight" in names and "child.bias" in names
        assert toy.num_parameters() == 4 + 6 + 3

    def test_attribute_reassignment_updates_registry(self):
        class Toy(Module):
            def __init__(self):
                super().__init__()
                self.weight = Parameter(np.ones(2))

        toy = Toy()
        toy.weight = None
        assert toy.parameters() == []

    def test_assignment_before_init_raises(self):
        class Broken(Module):
            def __init__(self):
                self.weight = Parameter(np.ones(2))  # missing super().__init__()

        with pytest.raises(RuntimeError):
            Broken()

    def test_train_eval_propagates(self):
        model = Sequential(Linear(2, 2, seed=0), Dropout(0.5))
        model.eval()
        assert all(not module.training for module in model)
        model.train()
        assert all(module.training for module in model)

    def test_zero_grad(self):
        layer = Linear(3, 2, seed=0)
        out = layer(Tensor(np.ones((4, 3)))).sum()
        out.backward()
        assert layer.weight.grad is not None
        layer.zero_grad()
        assert layer.weight.grad is None

    def test_state_dict_roundtrip(self):
        a = Linear(3, 2, seed=0)
        b = Linear(3, 2, seed=99)
        b.load_state_dict(a.state_dict())
        assert np.allclose(a.weight.data, b.weight.data)

    def test_state_dict_mismatch_raises(self):
        a, b = Linear(3, 2, seed=0), Linear(4, 2, seed=0)
        with pytest.raises((KeyError, ValueError)):
            b.load_state_dict(a.state_dict())

    def test_named_modules(self):
        model = Sequential(Linear(2, 2, seed=0), ReLU())
        names = [name for name, _ in model.named_modules()]
        assert "" in names and "layer_0" in names and "layer_1" in names

    def test_forward_not_implemented(self):
        with pytest.raises(NotImplementedError):
            Module()(1)


class TestLinear:
    def test_output_shape_and_bias(self):
        layer = Linear(5, 3, seed=0)
        out = layer(Tensor(np.ones((7, 5))))
        assert out.shape == (7, 3)
        layer_no_bias = Linear(5, 3, bias=False, seed=0)
        assert layer_no_bias.bias is None
        assert layer_no_bias.num_parameters() == 15

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            Linear(0, 3)

    def test_deterministic_with_seed(self):
        assert np.allclose(Linear(4, 4, seed=5).weight.data, Linear(4, 4, seed=5).weight.data)

    def test_gradients_flow_to_parameters(self):
        layer = Linear(3, 2, seed=1)
        loss = cross_entropy(layer(Tensor(np.random.default_rng(0).normal(size=(6, 3)))), np.array([0, 1] * 3))
        loss.backward()
        assert layer.weight.grad is not None and layer.bias.grad is not None

    def test_bilinear_shape(self):
        layer = Bilinear(4, 3, seed=0)
        out = layer(Tensor(np.ones((5, 4))), Tensor(np.ones((6, 3))))
        assert out.shape == (5, 6)


class TestDropout:
    def test_eval_mode_is_identity(self):
        layer = Dropout(0.9, seed=0)
        layer.eval()
        x = Tensor(np.ones((10, 10)))
        assert np.allclose(layer(x).data, x.data)

    def test_training_mode_zeroes_and_rescales(self):
        layer = Dropout(0.5, seed=0)
        out = layer(Tensor(np.ones((200, 50)))).data
        dropped_fraction = np.mean(out == 0.0)
        assert 0.4 < dropped_fraction < 0.6
        surviving = out[out != 0.0]
        assert np.allclose(surviving, 2.0)

    def test_zero_probability_identity(self):
        layer = Dropout(0.0)
        x = Tensor(np.random.default_rng(0).normal(size=(5, 5)))
        assert np.allclose(layer(x).data, x.data)

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            Dropout(1.0)
        with pytest.raises(ValueError):
            Dropout(-0.1)


class TestNormalisation:
    def test_batchnorm_normalises_training_batch(self):
        layer = BatchNorm1d(4)
        x = Tensor(np.random.default_rng(0).normal(3.0, 2.0, size=(256, 4)))
        out = layer(x).data
        assert np.allclose(out.mean(axis=0), 0.0, atol=1e-6)
        assert np.allclose(out.std(axis=0), 1.0, atol=1e-2)

    def test_batchnorm_running_stats_used_in_eval(self):
        layer = BatchNorm1d(2, momentum=0.5)
        x = Tensor(np.random.default_rng(1).normal(5.0, 1.0, size=(64, 2)))
        for _ in range(10):
            layer(x)
        layer.eval()
        out = layer(Tensor(np.full((4, 2), 5.0))).data
        assert np.all(np.abs(out) < 1.0)

    def test_batchnorm_shape_check(self):
        with pytest.raises(ValueError):
            BatchNorm1d(3)(Tensor(np.ones((2, 4))))

    def test_layernorm_rows_standardised(self):
        layer = LayerNorm(6)
        out = layer(Tensor(np.random.default_rng(2).normal(size=(5, 6)))).data
        assert np.allclose(out.mean(axis=1), 0.0, atol=1e-6)
        assert np.allclose(out.std(axis=1), 1.0, atol=1e-3)

    def test_layernorm_gradients(self):
        layer = LayerNorm(4)
        x = Tensor(np.random.default_rng(3).normal(size=(3, 4)), requires_grad=True)
        layer(x).sum().backward()
        assert x.grad is not None
        assert layer.weight.grad is not None


class TestContainersAndActivations:
    def test_sequential_applies_in_order(self):
        model = Sequential(Linear(3, 4, seed=0), ReLU(), Linear(4, 2, seed=1))
        out = model(Tensor(np.ones((5, 3))))
        assert out.shape == (5, 2)
        assert len(model) == 3
        assert isinstance(model[1], ReLU)

    def test_sequential_rejects_non_module(self):
        with pytest.raises(TypeError):
            Sequential(lambda x: x)

    def test_modulelist_registration_and_indexing(self):
        layers = ModuleList([Linear(2, 2, seed=i) for i in range(3)])
        assert len(layers) == 3
        assert len(layers.parameters()) == 6
        assert isinstance(layers[2], Linear)
        with pytest.raises(IndexError):
            layers[5]

    def test_activation_modules(self):
        x = Tensor(np.array([[-1.0, 0.5]]))
        assert np.all(ReLU()(x).data >= 0)
        assert np.all(np.abs(Tanh()(x).data) <= 1)
        assert np.all((Sigmoid()(x).data > 0) & (Sigmoid()(x).data < 1))
        assert np.allclose(Softmax()(x).data.sum(axis=-1), 1.0)
        assert LeakyReLU(0.1)(x).data[0, 0] == pytest.approx(-0.1)
        assert ELU()(x).data[0, 1] == pytest.approx(0.5)


class TestInit:
    def test_xavier_uniform_bounds(self):
        weights = xavier_uniform((100, 50), seed=0)
        limit = np.sqrt(6.0 / 150)
        assert np.all(np.abs(weights) <= limit + 1e-12)

    def test_xavier_normal_std(self):
        weights = xavier_normal((200, 200), seed=0)
        assert weights.std() == pytest.approx(np.sqrt(2.0 / 400), rel=0.15)

    def test_kaiming_uniform_scale(self):
        weights = kaiming_uniform((300, 10), seed=0)
        limit = np.sqrt(2.0) * np.sqrt(3.0 / 300)
        assert np.all(np.abs(weights) <= limit + 1e-12)

    def test_calculate_gain(self):
        assert calculate_gain("relu") == pytest.approx(np.sqrt(2.0))
        assert calculate_gain("tanh") == pytest.approx(5.0 / 3.0)
        assert calculate_gain("linear") == 1.0
        with pytest.raises(ValueError):
            calculate_gain("unknown")

    def test_fan_requires_2d(self):
        with pytest.raises(ValueError):
            xavier_uniform((5,))
