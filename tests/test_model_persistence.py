"""Tests for model checkpointing (state_dict round-trips) across every architecture."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.core import DHGCN, DHGCNConfig
from repro.models import DHGNN, GAT, GCN, HGNN, HGNNP, MLP, SGC, ChebNet, HyperGCN
from repro.training import TrainConfig, Trainer

# DHGNN is excluded here: its per-layer topology is rebuilt with an internal
# RNG, so two differently-seeded instances legitimately produce different
# outputs even with identical weights (its checkpoint behaviour is covered by
# the accuracy-based test below instead).
ALL_ARCHITECTURES = [MLP, SGC, GCN, ChebNet, GAT, HGNN, HGNNP, HyperGCN]


def build(model_class, dataset, seed=0):
    return model_class(dataset.n_features, dataset.n_classes, seed=seed)


class TestStateDictRoundtrip:
    @pytest.mark.parametrize("model_class", ALL_ARCHITECTURES)
    def test_transfer_reproduces_outputs(self, model_class, tiny_citation_dataset):
        dataset = tiny_citation_dataset
        source = build(model_class, dataset, seed=1).setup(dataset)
        target = build(model_class, dataset, seed=2).setup(dataset)
        target.load_state_dict(source.state_dict())
        source.eval()
        target.eval()
        assert np.allclose(
            source(Tensor(dataset.features)).data, target(Tensor(dataset.features)).data
        )

    def test_dhgcn_checkpoint_after_training(self, tiny_citation_dataset):
        dataset = tiny_citation_dataset
        model = DHGCN(dataset.n_features, dataset.n_classes, DHGCNConfig(hidden_dim=8), seed=0)
        trainer = Trainer(model, dataset, TrainConfig(epochs=15, patience=None))
        trained = trainer.train()
        checkpoint = model.state_dict()

        # A fresh instance (different seed, therefore a freshly built dynamic
        # topology) loaded from the checkpoint must perform comparably to the
        # trained model: the knowledge lives in the weights, the topology is
        # reconstructed from data.
        restored = DHGCN(dataset.n_features, dataset.n_classes, DHGCNConfig(hidden_dim=8), seed=99)
        restored.setup(dataset)
        restored.load_state_dict(checkpoint)
        restored_trainer = Trainer(restored, dataset, TrainConfig(epochs=1, patience=None))
        restored_accuracy = restored_trainer.evaluate()["test_accuracy"]
        assert restored_accuracy >= trained.test_accuracy - 0.1

    def test_state_dict_keys_are_qualified(self, tiny_citation_dataset):
        dataset = tiny_citation_dataset
        model = DHGCN(dataset.n_features, dataset.n_classes, DHGCNConfig(hidden_dim=8), seed=0)
        keys = list(model.state_dict())
        assert any("blocks" in key for key in keys)
        assert all(isinstance(key, str) and key for key in keys)

    def test_checkpoint_is_a_deep_copy(self, tiny_citation_dataset):
        dataset = tiny_citation_dataset
        model = build(GCN, dataset).setup(dataset)
        checkpoint = model.state_dict()
        first_key = next(iter(checkpoint))
        checkpoint[first_key][:] = 123.0
        assert not np.allclose(dict(model.named_parameters())[first_key].data, 123.0)


class TestTrainingContinuation:
    def test_training_can_resume_from_checkpoint(self, tiny_citation_dataset):
        dataset = tiny_citation_dataset
        model = build(HGNN, dataset, seed=0)
        trainer = Trainer(model, dataset, TrainConfig(epochs=10, patience=None))
        first = trainer.train()
        checkpoint = model.state_dict()

        resumed = build(HGNN, dataset, seed=0)
        resumed.setup(dataset)
        resumed.load_state_dict(checkpoint)
        second = Trainer(resumed, dataset, TrainConfig(epochs=10, patience=None)).train()
        # Continuing training from a trained checkpoint should not be worse than
        # the first phase by more than noise.
        assert second.test_accuracy >= first.test_accuracy - 0.1
